package core

import (
	"fmt"
	"math"
	"sort"

	"dmexplore/internal/pareto"
	"dmexplore/internal/stats"
)

// Evolve approximates the Pareto front with an NSGA-II-style evolutionary
// search over the axis grid: a population of configurations evolves under
// non-dominated sorting and crowding-distance selection, with uniform
// crossover and per-axis mutation. For spaces far beyond exhaustive reach
// (the full 64,800-point product and larger) this finds near-complete
// fronts within a few thousand simulations.
//
// Returns every configuration profiled during the run (deduplicated);
// callers extract the front with ParetoSet.
//
// Evaluation is generation-batched: the initial population and every
// offspring generation are profiled as one wave across the runner's full
// worker pool (duplicates and already-profiled genomes deduplicated by
// the batcher). All randomness stays on the coordinating goroutine, so a
// given seed yields the identical run for any worker count.
//
// Evolve is the 1-island degenerate case of the island model (see
// EvolveIsland): island 0, no migration hook. The island path with those
// options takes literally this code path, which is what makes the
// distributed service's 1-island runs bit-identical to serial searches.
func (r *Runner) Evolve(space *Space, objectives []string, opts EvolveOptions) ([]Result, error) {
	return r.EvolveIsland(space, objectives, IslandOptions{EvolveOptions: opts})
}

// EvolveOptions tune the evolutionary search.
type EvolveOptions struct {
	Population   int     // even, >= 4 (default 32)
	Budget       int     // total simulations (default 16 generations worth)
	MutationRate float64 // per-axis mutation probability (default 1/axes)
	Seed         uint64
}

func (o EvolveOptions) withDefaults() EvolveOptions {
	if o.Population == 0 {
		o.Population = 32
	}
	if o.Budget == 0 {
		o.Budget = o.Population * 16
	}
	return o
}

// rankAndCrowd computes non-domination ranks (0 = front) and crowding
// distances for the given population members. Infeasible configurations
// rank behind every feasible one.
func rankAndCrowd(b *evalBatcher, pop []int, objectives []string) (map[int]int, map[int]float64, error) {
	ranks := make(map[int]int, len(pop))
	crowd := make(map[int]float64, len(pop))

	var feasible []pareto.Point
	for _, idx := range pop {
		res, _ := b.lookup(idx)
		if res.Metrics == nil || !res.Metrics.Feasible() {
			ranks[idx] = math.MaxInt32 // infeasible: worst rank
			crowd[idx] = 0
			continue
		}
		vals := make([]float64, len(objectives))
		for d, obj := range objectives {
			v, err := res.Metrics.Objective(obj)
			if err != nil {
				return nil, nil, err
			}
			vals[d] = v
		}
		feasible = append(feasible, pareto.Point{Tag: fmt.Sprint(idx), Values: vals})
	}

	// Peel fronts: rank 0 is the Pareto front of the remainder, etc.
	remaining := feasible
	rank := 0
	for len(remaining) > 0 {
		front := pareto.Front(remaining)
		inFront := make(map[string]bool, len(front))
		for _, p := range front {
			inFront[p.Tag] = true
			idx := mustAtoi(p.Tag)
			ranks[idx] = rank
		}
		crowding(front, crowd)
		next := remaining[:0:0]
		for _, p := range remaining {
			if !inFront[p.Tag] {
				next = append(next, p)
			}
		}
		remaining = next
		rank++
	}
	return ranks, crowd, nil
}

// crowding assigns the NSGA-II crowding distance within one front.
func crowding(front []pareto.Point, crowd map[int]float64) {
	if len(front) == 0 {
		return
	}
	dim := len(front[0].Values)
	for _, p := range front {
		crowd[mustAtoi(p.Tag)] = 0
	}
	for d := 0; d < dim; d++ {
		sorted := append([]pareto.Point(nil), front...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Values[d] < sorted[j].Values[d] })
		lo, hi := sorted[0].Values[d], sorted[len(sorted)-1].Values[d]
		crowd[mustAtoi(sorted[0].Tag)] = math.Inf(1)
		crowd[mustAtoi(sorted[len(sorted)-1].Tag)] = math.Inf(1)
		if hi == lo {
			continue
		}
		for i := 1; i < len(sorted)-1; i++ {
			idx := mustAtoi(sorted[i].Tag)
			if !math.IsInf(crowd[idx], 1) {
				crowd[idx] += (sorted[i+1].Values[d] - sorted[i-1].Values[d]) / (hi - lo)
			}
		}
	}
}

// tournament picks the better of two random members (rank, then crowding).
func tournament(rng *stats.RNG, pop []int, ranks map[int]int, crowd map[int]float64) int {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if ranks[a] != ranks[b] {
		if ranks[a] < ranks[b] {
			return a
		}
		return b
	}
	if crowd[a] >= crowd[b] {
		return a
	}
	return b
}

// crossover mixes two genomes axis-wise (uniform crossover).
func crossover(rng *stats.RNG, space *Space, a, b int) int {
	da, db := space.digits(a), space.digits(b)
	child := make([]int, len(da))
	for i := range child {
		if rng.Bool(0.5) {
			child[i] = da[i]
		} else {
			child[i] = db[i]
		}
	}
	return space.index(child)
}

// mutate re-rolls each axis with probability rate (default 1/axes).
func mutate(rng *stats.RNG, space *Space, idx int, rate float64) int {
	if rate <= 0 {
		rate = 1 / float64(len(space.Axes))
	}
	d := space.digits(idx)
	for ax := range d {
		if rng.Bool(rate) {
			d[ax] = rng.Intn(len(space.Axes[ax].Options))
		}
	}
	return space.index(d)
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func mustAtoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}
