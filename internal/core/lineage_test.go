package core

import (
	"bytes"
	"reflect"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
)

// journalAll runs fn with an Observer that journals every result and
// returns the parsed records.
func journalAll(t *testing.T, workers int, surrogate bool, fn func(r *Runner)) []telemetry.Record {
	t.Helper()
	var buf bytes.Buffer
	journal := telemetry.NewJournal(&buf)
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: workers,
		Observer: func(res Result) {
			if err := journal.Record(res.JournalRecord()); err != nil {
				t.Error(err)
			}
		},
	}
	if surrogate {
		r.Surrogate = &SurrogateOptions{}
	}
	fn(r)
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestEvolveLineageJournaled(t *testing.T) {
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	recs := journalAll(t, 4, false, func(r *Runner) {
		if _, err := r.Evolve(space, objs, EvolveOptions{Population: 8, Budget: 48, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	})
	if len(recs) == 0 {
		t.Fatal("no journal records")
	}
	byIdx := telemetry.LineageIndex(recs)
	seeds, crossovers := 0, 0
	for _, rec := range recs {
		o := rec.Origin
		if o == nil {
			t.Fatalf("record %d has no origin", rec.Index)
		}
		if o.Strategy != "nsga2" {
			t.Fatalf("record %d strategy %q", rec.Index, o.Strategy)
		}
		if o.Wave < 1 {
			t.Fatalf("record %d wave %d", rec.Index, o.Wave)
		}
		switch o.Op {
		case "seed":
			seeds++
			if len(o.Parents) != 0 {
				t.Fatalf("seed %d has parents %v", rec.Index, o.Parents)
			}
		case "crossover":
			crossovers++
			if len(o.Parents) != 2 {
				t.Fatalf("crossover %d has parents %v, want 2", rec.Index, o.Parents)
			}
			for _, p := range o.Parents {
				if _, ok := byIdx[p]; !ok {
					t.Fatalf("crossover %d parent %d never journaled", rec.Index, p)
				}
			}
		default:
			t.Fatalf("record %d has unexpected op %q", rec.Index, o.Op)
		}
	}
	if seeds == 0 || crossovers == 0 {
		t.Fatalf("seeds=%d crossovers=%d, want both > 0", seeds, crossovers)
	}
	// Ancestry closure of every crossover child terminates in seeds.
	// Tournament selection may pick the same parent twice, so the
	// deduplicated closure can be as small as one record — what must
	// always hold is that it is non-empty and bottoms out at a seed.
	for _, rec := range recs {
		if rec.Origin.Op != "crossover" {
			continue
		}
		anc := telemetry.Ancestors(byIdx, rec.Index)
		if len(anc) == 0 {
			t.Fatalf("crossover %d has no ancestors", rec.Index)
		}
		hasSeed := false
		for _, a := range anc {
			if o := byIdx[a].Origin; o != nil && o.Op == "seed" {
				hasSeed = true
				break
			}
		}
		if !hasSeed {
			t.Fatalf("crossover %d ancestry %v contains no seed", rec.Index, anc)
		}
	}
}

func TestSweepLineageJournaled(t *testing.T) {
	recs := journalAll(t, 2, false, func(r *Runner) {
		if _, err := r.Explore(EasyportSpace()); err != nil {
			t.Fatal(err)
		}
	})
	for _, rec := range recs {
		if rec.Origin == nil || rec.Origin.Op != "sweep" || rec.Origin.Strategy != "sweep" {
			t.Fatalf("sweep record %d origin %+v", rec.Index, rec.Origin)
		}
	}
}

// TestLineageDeterministicAcrossWorkers extends the determinism contract
// to provenance: the journaled origin of every configuration — operator,
// wave, parents, surrogate rank and admission — must be identical for
// any worker count.
func TestLineageDeterministicAcrossWorkers(t *testing.T) {
	space := EasyportSpace()
	weights := []Weighted{{profile.ObjAccesses, 1}, {profile.ObjFootprint, 0.5}}
	capture := func(workers int) map[int]telemetry.Origin {
		recs := journalAll(t, workers, true, func(r *Runner) {
			if _, err := r.HillClimb(space, weights, 72, 17); err != nil {
				t.Fatal(err)
			}
		})
		out := make(map[int]telemetry.Origin, len(recs))
		for _, rec := range recs {
			if rec.Origin == nil {
				t.Fatalf("workers=%d: record %d has no origin", workers, rec.Index)
			}
			out[rec.Index] = *rec.Origin
		}
		return out
	}
	base := capture(1)
	for _, workers := range []int{2, 4} {
		got := capture(workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("origins differ between workers=1 and workers=%d", workers)
		}
	}
	// The surrogate must have annotated at least one origin.
	ranked := false
	for _, o := range base {
		if o.SurrogateRank > 0 {
			ranked = true
			break
		}
	}
	if !ranked {
		t.Fatal("no origin carries a surrogate rank")
	}
}

// TestSessionRecordsSpans checks the pipeline instrumentation end to
// end: a guided search over a span-equipped Runner lands full-sim,
// batch-wave and cache-probe-free stage aggregates, and the per-stage
// seconds are consistent with the telemetry collector's sim time.
func TestSessionRecordsSpans(t *testing.T) {
	rec := span.NewRecorder(2, 4096)
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 2,
		Spans: rec,
	}
	space := EasyportSpace()
	weights := []Weighted{{profile.ObjAccesses, 1}, {profile.ObjFootprint, 0.5}}
	if _, err := r.HillClimb(space, weights, 32, 3); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap[span.StageFullSim].Count == 0 {
		t.Fatalf("no full-sim spans: %+v", snap)
	}
	if snap[span.StageBatchWave].Count == 0 {
		t.Fatalf("no batch-wave spans: %+v", snap)
	}
	// Waves enclose their sims: summed wave time must be at least the
	// per-worker maximum sim time (they ran under the waves).
	if snap[span.StageBatchWave].Seconds <= 0 || snap[span.StageFullSim].Seconds <= 0 {
		t.Fatalf("zero stage seconds: %+v", snap)
	}
}
