package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"dmexplore/internal/alloc"
)

// SpaceSpec is the JSON file format for exploration inputs — the paper's
// "list of arrays with the parameter values to be explored" as a
// declarative document. Each axis carries its value array; each value is
// a label plus a patch applied to the configuration under construction:
//
//	{
//	  "name": "my-exploration",
//	  "base": {"general": {"layer": "main-dram", "classes": "single", ...}},
//	  "axes": [
//	    {"name": "fit", "options": [
//	      {"label": "first", "general": {"fit": "first"}},
//	      {"label": "best",  "general": {"fit": "best"}}]},
//	    {"name": "pools", "options": [
//	      {"label": "none"},
//	      {"label": "d74", "fixed": [{"slot_bytes": 74, "match_lo": 74, ...}]}]}
//	  ]
//	}
//
// "general" patches merge field-wise into the general pool configuration;
// "fixed" entries append dedicated pools in routing order.
type SpaceSpec struct {
	Name string       `json:"name"`
	Base alloc.Config `json:"base"`
	Axes []AxisSpec   `json:"axes"`
}

// AxisSpec is one parameter with its value array.
type AxisSpec struct {
	Name    string       `json:"name"`
	Options []OptionSpec `json:"options"`
}

// OptionSpec is one parameter value.
type OptionSpec struct {
	Label   string              `json:"label"`
	General json.RawMessage     `json:"general,omitempty"`
	Fixed   []alloc.FixedConfig `json:"fixed,omitempty"`
}

// LoadSpaceSpec reads and compiles a JSON space specification.
func LoadSpaceSpec(r io.Reader) (*Space, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseSpaceSpec(data)
}

// ParseSpaceSpec compiles a JSON space specification into a Space. Every
// option's patch is validated eagerly (test-applied against the base) so
// malformed specs fail at load time, not mid-sweep.
func ParseSpaceSpec(data []byte) (*Space, error) {
	var spec SpaceSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: parsing space spec: %w", err)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("core: space spec needs a name")
	}
	space := &Space{Name: spec.Name, Base: spec.Base}
	for _, ax := range spec.Axes {
		axis := Axis{Name: ax.Name}
		for _, opt := range ax.Options {
			opt := opt // capture
			if opt.General != nil {
				// Eager syntax/field check against a scratch config.
				scratch := cloneConfig(spec.Base)
				if err := patchGeneral(&scratch, opt.General); err != nil {
					return nil, fmt.Errorf("core: axis %q option %q: %w", ax.Name, opt.Label, err)
				}
			}
			axis.Options = append(axis.Options, Option{
				Label: opt.Label,
				Apply: func(c *alloc.Config) {
					if opt.General != nil {
						// Validated at parse time; the merge cannot fail now.
						_ = patchGeneral(c, opt.General)
					}
					if len(opt.Fixed) > 0 {
						c.Fixed = append(c.Fixed, opt.Fixed...)
					}
				},
			})
		}
		space.Axes = append(space.Axes, axis)
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return space, nil
}

// patchGeneral merges a JSON patch into the general pool configuration:
// only the fields present in the patch change.
func patchGeneral(c *alloc.Config, patch json.RawMessage) error {
	dec := json.NewDecoder(bytes.NewReader(patch))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c.General); err != nil {
		return fmt.Errorf("bad general patch: %w", err)
	}
	return nil
}
