package core

import (
	"fmt"
	"sort"

	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
)

// ObjectiveRange summarizes the spread of one metric across a sweep —
// the "range of a factor N" figures of the paper's §3.
type ObjectiveRange struct {
	Objective string
	Min, Max  float64
	// Factor is Max/Min (the paper's headline spread).
	Factor float64
	// BestIndex/WorstIndex are the configuration indices attaining
	// Min/Max.
	BestIndex, WorstIndex int
}

// Feasible filters results to configurations that served every request
// (infeasible configurations are excluded from the paper's statistics:
// an embedded design that fails allocations is not a candidate).
func Feasible(results []Result) []Result {
	out := make([]Result, 0, len(results))
	for _, r := range results {
		if r.Err == nil && r.Metrics != nil && r.Metrics.Feasible() {
			out = append(out, r)
		}
	}
	return out
}

// Range computes the spread of the named objective over the results.
func Range(results []Result, objective string) (ObjectiveRange, error) {
	or := ObjectiveRange{Objective: objective, BestIndex: -1, WorstIndex: -1}
	var s stats.Summary
	for _, r := range results {
		if r.Metrics == nil {
			continue
		}
		v, err := r.Metrics.Objective(objective)
		if err != nil {
			return or, err
		}
		if or.BestIndex == -1 || v < or.Min {
			or.Min = v
			or.BestIndex = r.Index
		}
		if or.WorstIndex == -1 || v > or.Max {
			or.Max = v
			or.WorstIndex = r.Index
		}
		s.Add(v)
	}
	if or.BestIndex == -1 {
		return or, fmt.Errorf("core: no results to range over")
	}
	or.Factor = s.RangeFactor()
	return or, nil
}

// ParetoSet reduces results to the Pareto-optimal subset under the named
// objectives (all minimized). The returned results are sorted by the
// first objective ascending; the parallel points slice carries the
// objective vectors (Tag = configuration index).
func ParetoSet(results []Result, objectives []string) ([]Result, []pareto.Point, error) {
	if len(objectives) < 2 {
		return nil, nil, fmt.Errorf("core: need at least two objectives, got %d", len(objectives))
	}
	byTag := make(map[string]Result, len(results))
	points := make([]pareto.Point, 0, len(results))
	for _, r := range results {
		if r.Metrics == nil {
			continue
		}
		vals := make([]float64, len(objectives))
		for d, obj := range objectives {
			v, err := r.Metrics.Objective(obj)
			if err != nil {
				return nil, nil, err
			}
			vals[d] = v
		}
		tag := fmt.Sprintf("%d", r.Index)
		byTag[tag] = r
		points = append(points, pareto.Point{Tag: tag, Values: vals})
	}
	front := pareto.Front(points)
	out := make([]Result, 0, len(front))
	seen := make(map[string]bool, len(front))
	for _, p := range front {
		if seen[p.Tag] {
			continue // duplicate objective vectors map to one result each
		}
		seen[p.Tag] = true
		out = append(out, byTag[p.Tag])
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := out[i].Metrics.Objective(objectives[0])
		vj, _ := out[j].Metrics.Objective(objectives[0])
		if vi != vj {
			return vi < vj
		}
		return out[i].Index < out[j].Index
	})
	return out, front, nil
}

// ParetoImprovement reports, within a Pareto set, the best-to-worst
// factor of one objective — the paper's "decrease up to a factor of N
// within the Pareto-optimal configurations". The endpoints of a trade-off
// curve are both Pareto-optimal, so this measures how much of the metric
// a designer can trade away by sliding along the front.
func ParetoImprovement(front []Result, objective string) (float64, error) {
	r, err := Range(front, objective)
	if err != nil {
		return 0, err
	}
	return r.Factor, nil
}

// ReductionPercent converts a best/worst factor into the paper's
// "% decrease" phrasing: factor 4.1 -> 75.6%.
func ReductionPercent(factor float64) float64 {
	if factor <= 0 {
		return 0
	}
	return (1 - 1/factor) * 100
}

// SummarizeMetrics returns the metrics of the result set, in result
// order, for reporting.
func SummarizeMetrics(results []Result) []*profile.Metrics {
	out := make([]*profile.Metrics, 0, len(results))
	for _, r := range results {
		if r.Metrics != nil {
			out = append(out, r.Metrics)
		}
	}
	return out
}
