package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dmexplore/internal/profile"
	"dmexplore/internal/simheap"
)

// storeRun builds a shape-valid pool run of n ops through the same
// serialized form the store itself round-trips.
func storeRun(t *testing.T, n int) *profile.PoolRun {
	t.Helper()
	st := profile.PoolRunState{
		Ops:      make([]int64, n),
		GAfter:   make([]int64, n+1),
		Counters: []simheap.LayerCounters{{Reads: uint64(n), Writes: 2 * uint64(n), PeakBytes: int64(n) * 64}},
		Cycles:   uint64(n) * 10,
	}
	for i := range st.Ops {
		st.Ops[i] = int64(64 * (i + 1))
		st.GAfter[i+1] = st.GAfter[i] + st.Ops[i]
	}
	run := profile.PoolRunFromState(st)
	if run == nil {
		t.Fatal("storeRun built an invalid state")
	}
	return run
}

func TestPoolMemoStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.jsonl")
	st, err := OpenPoolMemoStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := storeRun(t, 8), storeRun(t, 20)
	st.Put("ka", a)
	st.Put("kb", b)
	if _, ok := st.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPoolMemoStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", re.Len())
	}
	if s := re.Stats(); s.Loaded != 2 || s.Stale != 0 {
		t.Fatalf("reload stats %+v", s)
	}
	for key, want := range map[string]*profile.PoolRun{"ka": a, "kb": b} {
		got, ok := re.Get(key)
		if !ok {
			t.Fatalf("key %s lost across save/load", key)
		}
		if !reflect.DeepEqual(got.State(), want.State()) {
			t.Fatalf("key %s run diverged across save/load", key)
		}
	}
	if s := re.Stats(); s.Hits != 2 {
		t.Fatalf("hit accounting %+v", s)
	}
}

func TestPoolMemoStoreStaleVersionPurged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.jsonl")
	good := storeRun(t, 4).State()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// One entry from a hypothetical older schema, one current, one with
	// an impossible shape under the current version.
	fmt.Fprintf(f, `{"v":0,"key":"old","run":{"ops":[64],"g_after":[0,64]}}`+"\n")
	fmt.Fprintf(f, `{"v":1,"key":"cur","run":{"ops":%s,"g_after":%s,"counters":%s,"cycles":%d}}`+"\n",
		mustJSON(t, good.Ops), mustJSON(t, good.GAfter), mustJSON(t, good.Counters), good.Cycles)
	fmt.Fprintf(f, `{"v":1,"key":"bad","run":{"ops":[64,128],"g_after":[0]}}`+"\n")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := OpenPoolMemoStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("kept %d entries, want only the current-version one", st.Len())
	}
	if s := st.Stats(); s.Stale != 2 {
		t.Fatalf("stale accounting %+v, want 2", s)
	}
	if _, ok := st.Get("cur"); !ok {
		t.Fatal("current-version entry lost")
	}
	// Dropping stale entries marks the store dirty: Save rewrites, and
	// the rewritten file reloads clean.
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenPoolMemoStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := re.Stats(); s.Stale != 0 || s.Loaded != 1 {
		t.Fatalf("rewritten file still carries stale entries: %+v", s)
	}
}

func TestPoolMemoStoreBudgetEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.jsonl")
	big := storeRun(t, 256)
	budget := 2*poolMemoEntryBytes(big) + poolMemoEntryBytes(big)/2 // fits two
	st, err := OpenPoolMemoStore(path, budget)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("k1", storeRun(t, 256))
	st.Put("k2", storeRun(t, 256))
	st.Put("k3", storeRun(t, 256))
	if st.Len() != 2 {
		t.Fatalf("retained %d entries under a two-entry budget", st.Len())
	}
	if _, ok := st.Get("k1"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if s := st.Stats(); s.Dropped != 1 || s.Bytes > budget {
		t.Fatalf("eviction stats %+v (budget %d)", s, budget)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	// Reload under the same budget keeps the same survivors (oldest-first
	// file order).
	re, err := OpenPoolMemoStore(path, budget)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reload retained %d", re.Len())
	}
	for _, key := range []string{"k2", "k3"} {
		if _, ok := re.Get(key); !ok {
			t.Fatalf("survivor %s lost on reload", key)
		}
	}
}

// TestPoolMemoStoreComposesAcrossSessions is the core contract:
// a store saved by one tool invocation serves composed evaluations in
// the next, bit-identical to the full path.
func TestPoolMemoStoreComposesAcrossSessions(t *testing.T) {
	space := EasyportSpace()
	full, err := easyportRunner(t, false).Sample(space, 48, 5)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "memo.jsonl")
	first, err := OpenPoolMemoStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1 := easyportRunner(t, true)
	r1.PoolMemo = first
	warm, err := r1.Sample(space, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "memo-record", full, warm)
	if first.Len() == 0 {
		t.Fatal("first run recorded no pool runs")
	}
	if err := first.Save(); err != nil {
		t.Fatal(err)
	}

	second, err := OpenPoolMemoStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2 := easyportRunner(t, true)
	r2.PoolMemo = second
	reuse, err := r2.Sample(space, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "memo-reuse", full, reuse)
	if s := second.Stats(); s.Hits == 0 {
		t.Fatalf("second invocation never hit the persisted memo: %+v", s)
	}
	if composed := countComposed(reuse); composed <= countComposed(warm) {
		t.Fatalf("persisted memo composed %d evals, cold run composed %d — no cross-invocation gain",
			composed, countComposed(warm))
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
