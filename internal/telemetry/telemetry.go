// Package telemetry instruments the exploration engine: per-worker
// sharded counters and latency histograms merged on snapshot, an
// append-only JSONL run journal, a throttled terminal progress reporter
// with ETA, and an optional expvar/pprof HTTP endpoint for long sweeps.
//
// The recording side is built for the replay hot path: a worker owns one
// Shard, every record is a handful of uncontended atomic adds into
// padded, pre-sized arrays — no locks, no maps, no allocation — so the
// AllocsPerRun guard on the steady-state replay loop keeps reporting
// zero even with telemetry enabled. Readers (the progress line, expvar,
// the final run summary) merge all shards into a Snapshot at whatever
// rate they like without perturbing the workers.
package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"dmexplore/internal/stats"
)

// Shard accumulates one worker's telemetry. All fields are atomics so
// concurrent snapshots are race-free, but each shard is written by a
// single worker, so the adds never contend. The struct is padded to keep
// adjacent shards out of each other's cache lines.
type Shard struct {
	sims     atomic.Uint64 // simulations actually executed
	simNanos atomic.Int64  // total wall time inside those simulations
	events   atomic.Uint64 // trace events replayed by those simulations

	partialSims     atomic.Uint64 // sims served by the incremental partial path
	eventsSkipped   atomic.Uint64 // trace events partial sims avoided replaying
	partitionBuilds atomic.Uint64 // invariant-partition replays (one per signature)
	composedEvals   atomic.Uint64 // evaluations composed from the pool-run memo (no sim)

	cacheHits   atomic.Uint64 // configurations served from the results cache
	cacheMisses atomic.Uint64 // cache consulted, configuration not present
	memoHits    atomic.Uint64 // served from the in-run duplicate memo

	errConfig atomic.Uint64 // errors materializing a configuration
	errSim    atomic.Uint64 // errors building or replaying a configuration

	busyNanos atomic.Int64 // wall time spent working on configurations

	latency [stats.NumLog2Buckets]atomic.Uint64 // simulation latency, ns, log2 buckets

	_ [64]byte // keep the next shard off this one's cache lines
}

// ObserveSim records one executed simulation: its wall time and the
// number of trace events it replayed.
func (s *Shard) ObserveSim(d time.Duration, events int) {
	ns := d.Nanoseconds()
	s.sims.Add(1)
	s.simNanos.Add(ns)
	s.events.Add(uint64(events))
	s.latency[stats.Log2Bucket(ns)].Add(1)
}

// ObservePartialSim records one simulation served by the incremental
// partial-replay path: its wall time, the fallback ops it replayed and
// the trace events it skipped relative to a full replay. Partial sims
// count toward Sims (they complete a configuration) and are broken out
// in PartialSims.
func (s *Shard) ObservePartialSim(d time.Duration, replayed, skipped int) {
	ns := d.Nanoseconds()
	s.sims.Add(1)
	s.partialSims.Add(1)
	s.simNanos.Add(ns)
	s.events.Add(uint64(replayed))
	s.eventsSkipped.Add(uint64(skipped))
	s.latency[stats.Log2Bucket(ns)].Add(1)
}

// ObservePartitionBuild records one invariant-partition replay (the
// once-per-signature full-trace pass the incremental path amortizes).
// It is not a configuration completion, so it does not count as a sim,
// but its wall time and events feed the throughput accounting.
func (s *Shard) ObservePartitionBuild(d time.Duration, events int) {
	ns := d.Nanoseconds()
	s.partitionBuilds.Add(1)
	s.simNanos.Add(ns)
	s.events.Add(uint64(events))
	s.latency[stats.Log2Bucket(ns)].Add(1)
}

// ObserveCompose records one evaluation served by composing a memoized
// standalone general-pool run with its partition — a pool-run memo hit.
// No simulation executed, so it does not count as a sim; skipped is the
// full trace event count the composition avoided replaying.
func (s *Shard) ObserveCompose(d time.Duration, skipped int) {
	_ = d // composition is sub-histogram-resolution; busy time captures it
	s.composedEvals.Add(1)
	s.eventsSkipped.Add(uint64(skipped))
}

// CacheHit records a configuration served from the results cache.
func (s *Shard) CacheHit() { s.cacheHits.Add(1) }

// CacheMiss records a results-cache lookup that found nothing.
func (s *Shard) CacheMiss() { s.cacheMisses.Add(1) }

// MemoHit records a configuration served from the in-run duplicate memo.
func (s *Shard) MemoHit() { s.memoHits.Add(1) }

// ConfigError records a failure to materialize a configuration.
func (s *Shard) ConfigError() { s.errConfig.Add(1) }

// SimError records a failure while building or replaying a configuration.
func (s *Shard) SimError() { s.errSim.Add(1) }

// AddBusy records wall time a worker spent processing configurations
// (simulated or cache-served); utilization = busy / (workers × elapsed).
func (s *Shard) AddBusy(d time.Duration) { s.busyNanos.Add(d.Nanoseconds()) }

// Collector owns the shards of one run. Hand each worker its own shard;
// snapshot from anywhere.
type Collector struct {
	start      time.Time
	shards     []Shard
	cacheStale atomic.Uint64 // stale results-cache entries, set by the cache owner

	// Surrogate-screening counters. These are written by the search
	// coordinator (never by workers), so they live on the collector like
	// cacheStale rather than in a shard.
	surrogatePredictions atomic.Uint64 // candidate scores computed by the surrogate
	surrogateScreened    atomic.Uint64 // candidates the surrogate filtered out of waves
	surrogateTrained     atomic.Uint64 // exact results absorbed into the surrogate
}

// NewCollector returns a collector with one shard per worker and the
// run's wall clock started. workers <= 0 allocates a single shard.
func NewCollector(workers int) *Collector {
	if workers <= 0 {
		workers = 1
	}
	return &Collector{start: time.Now(), shards: make([]Shard, workers)}
}

// Shard returns worker i's shard (wrapping when more workers than shards
// show up, which degrades to sharing, never to a crash).
func (c *Collector) Shard(i int) *Shard {
	if i < 0 {
		i = -i
	}
	return &c.shards[i%len(c.shards)]
}

// Workers returns the shard count.
func (c *Collector) Workers() int { return len(c.shards) }

// RestartClock resets the run's wall clock; utilization and events/sec
// in later snapshots are measured from this instant.
func (c *Collector) RestartClock() { c.start = time.Now() }

// AddCacheStale records stale results-cache entries (version-mismatched
// at load, or superseded by a recomputed result).
func (c *Collector) AddCacheStale(n uint64) { c.cacheStale.Add(n) }

// AddSurrogatePredictions records candidate scores computed by the
// surrogate ranking stage.
func (c *Collector) AddSurrogatePredictions(n uint64) { c.surrogatePredictions.Add(n) }

// AddSurrogateScreened records candidates the surrogate dropped from an
// evaluation wave — configurations that would have been simulated exactly
// without the screening stage.
func (c *Collector) AddSurrogateScreened(n uint64) { c.surrogateScreened.Add(n) }

// AddSurrogateTrained records exact results absorbed into the surrogate
// models (online updates plus warm-start replay).
func (c *Collector) AddSurrogateTrained(n uint64) { c.surrogateTrained.Add(n) }

// Snapshot is a merged, self-consistent-enough view of all shards at one
// instant (counters are read individually; a snapshot taken mid-run can
// be off by the records in flight, which is fine for progress and
// expvar, and exact once the run has completed).
type Snapshot struct {
	Workers    int     `json:"workers"`
	ElapsedSec float64 `json:"elapsed_sec"`

	Sims         uint64  `json:"sims"`
	SimSecTotal  float64 `json:"sim_sec_total"`
	Events       uint64  `json:"events_replayed"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Incremental-evaluation breakdown: PartialSims of Sims were served
	// by the partial-replay path, skipping EventsSkipped trace events;
	// PartitionBuilds is the number of once-per-signature invariant
	// replays paid to enable them. ComposedEvals are evaluations served
	// by the pool-run memo — pure composition, no simulation — and are
	// counted in Done() but not in Sims.
	PartialSims     uint64 `json:"partial_sims,omitempty"`
	EventsSkipped   uint64 `json:"events_skipped,omitempty"`
	PartitionBuilds uint64 `json:"partition_builds,omitempty"`
	ComposedEvals   uint64 `json:"composed_evals,omitempty"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheStale  uint64 `json:"cache_stale"`
	MemoHits    uint64 `json:"memo_hits"`

	// Surrogate-screening breakdown: the learned models scored
	// SurrogatePredictions candidates, dropped SurrogateScreened of them
	// from evaluation waves, and were trained on SurrogateTrained exact
	// results (online plus warm-start).
	SurrogatePredictions uint64 `json:"surrogate_predictions,omitempty"`
	SurrogateScreened    uint64 `json:"surrogate_screened,omitempty"`
	SurrogateTrained     uint64 `json:"surrogate_trained,omitempty"`

	ErrorsConfig uint64 `json:"errors_config"`
	ErrorsSim    uint64 `json:"errors_sim"`

	// Utilization is busy worker time over available worker time, 0..1.
	Utilization float64 `json:"worker_utilization"`

	// Simulation latency quantiles (upper bounds, exact to within one
	// power of two) merged from the per-shard histograms.
	SimP50Ms float64 `json:"sim_p50_ms"`
	SimP90Ms float64 `json:"sim_p90_ms"`
	SimP99Ms float64 `json:"sim_p99_ms"`

	// LatencyBuckets are the merged log2 histogram counts (bucket i as in
	// stats.Log2Bucket over nanoseconds), for offline analysis.
	LatencyBuckets []uint64 `json:"latency_buckets,omitempty"`
}

// Snapshot merges every shard.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Workers:    len(c.shards),
		CacheStale: c.cacheStale.Load(),

		SurrogatePredictions: c.surrogatePredictions.Load(),
		SurrogateScreened:    c.surrogateScreened.Load(),
		SurrogateTrained:     c.surrogateTrained.Load(),
	}
	elapsed := time.Since(c.start)
	s.ElapsedSec = elapsed.Seconds()
	var simNanos, busyNanos int64
	buckets := make([]uint64, stats.NumLog2Buckets)
	for i := range c.shards {
		sh := &c.shards[i]
		s.Sims += sh.sims.Load()
		simNanos += sh.simNanos.Load()
		s.Events += sh.events.Load()
		s.PartialSims += sh.partialSims.Load()
		s.EventsSkipped += sh.eventsSkipped.Load()
		s.PartitionBuilds += sh.partitionBuilds.Load()
		s.ComposedEvals += sh.composedEvals.Load()
		s.CacheHits += sh.cacheHits.Load()
		s.CacheMisses += sh.cacheMisses.Load()
		s.MemoHits += sh.memoHits.Load()
		s.ErrorsConfig += sh.errConfig.Load()
		s.ErrorsSim += sh.errSim.Load()
		busyNanos += sh.busyNanos.Load()
		for b := range sh.latency {
			buckets[b] += sh.latency[b].Load()
		}
	}
	s.SimSecTotal = float64(simNanos) / 1e9
	if s.ElapsedSec > 0 {
		s.EventsPerSec = float64(s.Events) / s.ElapsedSec
		s.Utilization = float64(busyNanos) / 1e9 / (s.ElapsedSec * float64(len(c.shards)))
	}
	s.SimP50Ms = float64(stats.Log2Quantile(buckets, 0.50)) / 1e6
	s.SimP90Ms = float64(stats.Log2Quantile(buckets, 0.90)) / 1e6
	s.SimP99Ms = float64(stats.Log2Quantile(buckets, 0.99)) / 1e6
	s.LatencyBuckets = buckets
	return s
}

// Done returns the configurations accounted for so far: executed
// simulations plus cache-, memo- and composition-served ones.
func (s Snapshot) Done() uint64 {
	return s.Sims + s.CacheHits + s.MemoHits + s.ComposedEvals
}

// PartialSimRate returns the fraction of executed simulations served by
// the incremental partial-replay path (0 when nothing ran).
func (s Snapshot) PartialSimRate() float64 {
	if s.Sims == 0 {
		return 0
	}
	return float64(s.PartialSims) / float64(s.Sims)
}

// CacheHitRate returns hits / lookups (0 when the cache was never
// consulted).
func (s Snapshot) CacheHitRate() float64 {
	lookups := s.CacheHits + s.CacheMisses
	if lookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(lookups)
}

// String renders the one-line human summary the tools print after a run.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d sims in %.2fs", s.Sims, s.ElapsedSec)
	if s.EventsPerSec > 0 {
		fmt.Fprintf(&b, ", %.3g events/s", s.EventsPerSec)
	}
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Fprintf(&b, ", cache %.0f%% hit", 100*s.CacheHitRate())
	}
	if s.MemoHits > 0 {
		fmt.Fprintf(&b, ", %d memo hits", s.MemoHits)
	}
	if s.PartialSims > 0 || s.ComposedEvals > 0 {
		fmt.Fprintf(&b, ", %.0f%% partial sims (%d partitions, %.3g events skipped)",
			100*s.PartialSimRate(), s.PartitionBuilds, float64(s.EventsSkipped))
	}
	if s.ComposedEvals > 0 {
		fmt.Fprintf(&b, ", %d composed (memo)", s.ComposedEvals)
	}
	if s.SurrogatePredictions > 0 {
		fmt.Fprintf(&b, ", surrogate scored %d / screened out %d (trained on %d)",
			s.SurrogatePredictions, s.SurrogateScreened, s.SurrogateTrained)
	}
	fmt.Fprintf(&b, ", sim p50/p99 %.3g/%.3gms", s.SimP50Ms, s.SimP99Ms)
	fmt.Fprintf(&b, ", workers %.0f%% busy", 100*s.Utilization)
	if n := s.ErrorsConfig + s.ErrorsSim; n > 0 {
		fmt.Fprintf(&b, ", %d errors", n)
	}
	return b.String()
}
