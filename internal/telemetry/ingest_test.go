package telemetry

import (
	"strings"
	"sync"
	"testing"

	"dmexplore/internal/blockio"
)

// The compiler enforces what the doc comment promises: Ingest satisfies
// blockio.Stats.
var _ blockio.Stats = (*Ingest)(nil)

func TestIngestCountsConcurrently(t *testing.T) {
	g := NewIngest()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.ObserveBlock(256, 10)
			}
			g.CRCFailure()
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if s.Blocks != 8000 || s.Bytes != 8000*256 || s.Records != 80000 || s.CRCFailures != 8 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if s.ElapsedSec <= 0 || s.BytesPerSec <= 0 {
		t.Fatalf("throughput not derived: %+v", s)
	}
	str := s.String()
	if !strings.Contains(str, "80000 records") || !strings.Contains(str, "CRC FAILURES") {
		t.Fatalf("bad String(): %q", str)
	}
}

func TestIngestSnapshotCleanString(t *testing.T) {
	g := NewIngest()
	g.ObserveBlock(1<<20, 5)
	if str := g.Snapshot().String(); strings.Contains(str, "FAILURES") {
		t.Fatalf("clean ingest mentions failures: %q", str)
	}
}
