package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Ingest counts block-framed file ingestion: blocks, payload bytes and
// records that passed their CRC, and checksum failures. It structurally
// satisfies blockio.Stats, so one Ingest can be handed to the sequential
// readers and every worker of a parallel one — all methods are atomic
// adds, safe for concurrent use and free of locks on the decode path.
type Ingest struct {
	start time.Time

	blocks      atomic.Uint64
	bytes       atomic.Uint64
	records     atomic.Uint64
	crcFailures atomic.Uint64
}

// NewIngest returns an Ingest with its wall clock started.
func NewIngest() *Ingest {
	return &Ingest{start: time.Now()}
}

// ObserveBlock records one successfully verified block.
func (g *Ingest) ObserveBlock(payloadBytes, records int) {
	g.blocks.Add(1)
	g.bytes.Add(uint64(payloadBytes))
	g.records.Add(uint64(records))
}

// CRCFailure records a block whose checksum did not match.
func (g *Ingest) CRCFailure() { g.crcFailures.Add(1) }

// IngestSnapshot is a point-in-time view of an Ingest.
type IngestSnapshot struct {
	Blocks      uint64  `json:"blocks"`
	Bytes       uint64  `json:"bytes"`
	Records     uint64  `json:"records"`
	CRCFailures uint64  `json:"crc_failures"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// Snapshot merges the counters at one instant. Mid-ingest it can be off
// by the blocks in flight; after the read completes it is exact.
func (g *Ingest) Snapshot() IngestSnapshot {
	s := IngestSnapshot{
		Blocks:      g.blocks.Load(),
		Bytes:       g.bytes.Load(),
		Records:     g.records.Load(),
		CRCFailures: g.crcFailures.Load(),
		ElapsedSec:  time.Since(g.start).Seconds(),
	}
	if s.ElapsedSec > 0 {
		s.BytesPerSec = float64(s.Bytes) / s.ElapsedSec
	}
	return s
}

// String renders the snapshot for CLI status lines, scaling bytes to a
// human unit.
func (s IngestSnapshot) String() string {
	out := fmt.Sprintf("%d records in %d blocks (%s, %s/s)",
		s.Records, s.Blocks, scaleBytes(float64(s.Bytes)), scaleBytes(s.BytesPerSec))
	if s.CRCFailures > 0 {
		out += fmt.Sprintf(", %d CRC FAILURES", s.CRCFailures)
	}
	return out
}

func scaleBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
