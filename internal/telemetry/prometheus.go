package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dmexplore/internal/stats"
	"dmexplore/internal/telemetry/span"
)

// Prometheus text-format (0.0.4) exposition of the run's telemetry. The
// metric names are a stable contract — dashboards and the future
// coordinator/worker service scrape them, and per-island deployments
// will add labels to these same names — so renaming one is a breaking
// change, exactly like a span stage name.
//
// Every Snapshot field maps to a metric:
//
//	dmexplore_workers                       Workers
//	dmexplore_elapsed_seconds               ElapsedSec
//	dmexplore_sims_total                    Sims
//	dmexplore_sim_seconds_total             SimSecTotal
//	dmexplore_events_replayed_total         Events
//	dmexplore_events_per_second             EventsPerSec
//	dmexplore_partial_sims_total            PartialSims
//	dmexplore_events_skipped_total          EventsSkipped
//	dmexplore_partition_builds_total        PartitionBuilds
//	dmexplore_composed_evals_total          ComposedEvals
//	dmexplore_cache_hits_total              CacheHits
//	dmexplore_cache_misses_total            CacheMisses
//	dmexplore_cache_stale_total             CacheStale
//	dmexplore_memo_hits_total               MemoHits
//	dmexplore_surrogate_predictions_total   SurrogatePredictions
//	dmexplore_surrogate_screened_total      SurrogateScreened
//	dmexplore_surrogate_trained_total       SurrogateTrained
//	dmexplore_errors_total{kind=...}        ErrorsConfig, ErrorsSim
//	dmexplore_worker_utilization            Utilization
//	dmexplore_sim_latency_quantile_seconds  SimP50Ms, SimP90Ms, SimP99Ms
//	dmexplore_sim_latency_seconds           LatencyBuckets (histogram)
//
// plus, when a flight recorder is attached, one histogram per pipeline
// stage:
//
//	dmexplore_stage_duration_seconds{stage=...}  span aggregates

// WritePrometheus writes the snapshot (and, when stages is non-nil, the
// flight recorder's per-stage histograms) in Prometheus text format.
func WritePrometheus(w io.Writer, s Snapshot, stages []span.StageSnapshot) error {
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("dmexplore_workers", "Worker pool size.", float64(s.Workers))
	gauge("dmexplore_elapsed_seconds", "Wall time since the run's clock started.", s.ElapsedSec)
	counter("dmexplore_sims_total", "Simulations executed (full and partial).", s.Sims)
	gauge("dmexplore_sim_seconds_total", "Total wall time inside simulations and partition builds.", s.SimSecTotal)
	counter("dmexplore_events_replayed_total", "Trace events replayed.", s.Events)
	gauge("dmexplore_events_per_second", "Replay throughput over the run so far.", s.EventsPerSec)
	counter("dmexplore_partial_sims_total", "Simulations served by the incremental partial-replay path.", s.PartialSims)
	counter("dmexplore_events_skipped_total", "Trace events partial sims avoided replaying.", s.EventsSkipped)
	counter("dmexplore_partition_builds_total", "Invariant-partition replays (one per fixed-pool signature).", s.PartitionBuilds)
	counter("dmexplore_composed_evals_total", "Evaluations composed from the pool-run memo (no simulation).", s.ComposedEvals)
	counter("dmexplore_cache_hits_total", "Configurations served from the results cache.", s.CacheHits)
	counter("dmexplore_cache_misses_total", "Results-cache lookups that found nothing.", s.CacheMisses)
	counter("dmexplore_cache_stale_total", "Stale results-cache entries dropped or superseded.", s.CacheStale)
	counter("dmexplore_memo_hits_total", "Configurations served from the in-run duplicate memo.", s.MemoHits)
	counter("dmexplore_surrogate_predictions_total", "Candidate scores computed by the surrogate models.", s.SurrogatePredictions)
	counter("dmexplore_surrogate_screened_total", "Candidates the surrogate dropped from evaluation waves.", s.SurrogateScreened)
	counter("dmexplore_surrogate_trained_total", "Exact results absorbed into the surrogate models.", s.SurrogateTrained)

	fmt.Fprintf(&b, "# HELP dmexplore_errors_total Evaluation errors by kind.\n# TYPE dmexplore_errors_total counter\n")
	fmt.Fprintf(&b, "dmexplore_errors_total{kind=\"config\"} %d\n", s.ErrorsConfig)
	fmt.Fprintf(&b, "dmexplore_errors_total{kind=\"sim\"} %d\n", s.ErrorsSim)

	gauge("dmexplore_worker_utilization", "Busy worker time over available worker time, 0..1.", s.Utilization)

	fmt.Fprintf(&b, "# HELP dmexplore_sim_latency_quantile_seconds Simulation latency quantile upper bounds (exact to one power of two).\n# TYPE dmexplore_sim_latency_quantile_seconds gauge\n")
	for _, q := range []struct {
		q string
		v float64
	}{{"0.5", s.SimP50Ms}, {"0.9", s.SimP90Ms}, {"0.99", s.SimP99Ms}} {
		fmt.Fprintf(&b, "dmexplore_sim_latency_quantile_seconds{quantile=%q} %s\n", q.q, promFloat(q.v/1e3))
	}

	writeHistogram(&b, "dmexplore_sim_latency_seconds",
		"Simulation latency histogram (log2 buckets).", "", s.LatencyBuckets, s.SimSecTotal)

	if stages != nil {
		fmt.Fprintf(&b, "# HELP dmexplore_stage_duration_seconds Flight-recorder span durations per pipeline stage (log2 buckets).\n# TYPE dmexplore_stage_duration_seconds histogram\n")
		for _, st := range stages {
			writeHistogram(&b, "dmexplore_stage_duration_seconds", "", st.Name, st.Buckets, st.Seconds)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits one cumulative histogram from log2 bucket counts.
// Buckets with no new observations are elided (cumulative semantics make
// that valid exposition); the +Inf bucket, _sum and _count always
// appear. stage, when non-empty, labels the series; help, when
// non-empty, emits the HELP/TYPE header (stage-labelled series share one
// header written by the caller).
func writeHistogram(b *strings.Builder, name, help, stage string, buckets []uint64, sumSeconds float64) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	labels := func(le string) string {
		if stage == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{stage=%q,le=%q}", stage, le)
	}
	suffix := ""
	if stage != "" {
		suffix = fmt.Sprintf("{stage=%q}", stage)
	}
	var cum uint64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		cum += c
		le := promFloat(float64(stats.Log2BucketHi(i)) / 1e9)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labels(le), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labels("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, promFloat(sumSeconds))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, cum)
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, no exponent surprises for common values.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromSample is one labelled observation of a metric — the unit the
// coordinator's per-worker / per-island exposition is built from.
type PromSample struct {
	Labels string // rendered label set, e.g. `worker="w1",island="2"` (no braces)
	Value  float64
}

// WritePromSeries emits one metric family with any number of labelled
// samples, HELP/TYPE header first. typ is "gauge" or "counter". The
// coordinator uses it for dmserve_* families whose cardinality (workers,
// islands, jobs) is only known at scrape time.
func WritePromSeries(b *strings.Builder, name, typ, help string, samples []PromSample) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		if s.Labels == "" {
			fmt.Fprintf(b, "%s %s\n", name, promFloat(s.Value))
		} else {
			fmt.Fprintf(b, "%s{%s} %s\n", name, s.Labels, promFloat(s.Value))
		}
	}
}

// PromLabel renders one label pair for a PromSample label set.
func PromLabel(key, value string) string {
	return fmt.Sprintf("%s=%q", key, value)
}
