package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressThrottles(t *testing.T) {
	var buf bytes.Buffer
	// A huge interval: only the final update may print.
	p := NewProgress(&buf, nil, time.Hour)
	for i := 1; i <= 100; i++ {
		p.Update(i, 100)
	}
	out := buf.String()
	if n := strings.Count(out, "\r"); n != 1 {
		t.Fatalf("printed %d times, want 1 (final only):\n%q", n, out)
	}
	if !strings.Contains(out, "profiled 100/100 (100%)") {
		t.Fatalf("final line missing: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final line not terminated: %q", out)
	}
	if strings.Contains(out, "ETA") {
		t.Fatalf("final line carries an ETA: %q", out)
	}
}

func TestProgressShowsRateEtaAndHitRate(t *testing.T) {
	col := NewCollector(1)
	col.Shard(0).CacheHit()
	col.Shard(0).CacheHit()
	col.Shard(0).CacheMiss()
	var buf bytes.Buffer
	p := NewProgress(&buf, col, time.Nanosecond)
	p.start = p.start.Add(-time.Second) // pretend a second elapsed
	p.Update(50, 100)
	out := buf.String()
	for _, want := range []string{"profiled 50/100 (50%)", "cfg/s", "ETA", "cache 67%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestProgressConcurrentUpdates(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, nil, time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Update(w*500+i+1, 4000)
			}
		}(w)
	}
	wg.Wait()
	p.Update(4000, 4000)
	if !strings.Contains(buf.String(), "4000/4000") {
		t.Fatalf("final update missing:\n%q", buf.String())
	}
}

// TestProgressSuppressesBogusETA is the regression test for the
// early-run ETA: one configuration done after an hour projects a
// centuries-long (or overflowed) estimate, which must render as
// unknown, not as a number.
func TestProgressSuppressesBogusETA(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, nil, time.Nanosecond)
	p.start = p.start.Add(-time.Hour)
	p.Update(1, 1000000)
	out := buf.String()
	if !strings.Contains(out, "ETA --:--") {
		t.Fatalf("bogus ETA not suppressed: %q", out)
	}
}

func TestEtaFor(t *testing.T) {
	cases := []struct {
		remaining int
		rate      float64
		want      time.Duration
	}{
		{0, 10, 0},
		{-5, 10, 0},
		{100, 10, 10 * time.Second},
		{999999, 1.0 / 3600, -1}, // ~115 years: suppressed
		{1, 1e-300, -1},          // would overflow time.Duration
		{3600, 1, time.Hour},     // exactly renderable
	}
	for _, c := range cases {
		if got := etaFor(c.remaining, c.rate); got != c.want {
			t.Errorf("etaFor(%d, %g) = %v, want %v", c.remaining, c.rate, got, c.want)
		}
	}
}

func TestFormatETA(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{-time.Second, "--:--"}, // the etaFor "unknown" sentinel
		{400 * time.Millisecond, "0:01"}, // rounds up, never 0:00 mid-run
		{59 * time.Second, "0:59"},
		{90 * time.Second, "1:30"},
		{3600 * time.Second, "1:00:00"},
		{3725 * time.Second, "1:02:05"},
	}
	for _, c := range cases {
		if got := formatETA(c.d); got != c.want {
			t.Errorf("formatETA(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
