package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"dmexplore/internal/stats"
	"dmexplore/internal/telemetry/span"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedSnapshot exercises every Snapshot field with deterministic
// values, so the exposition body is byte-stable.
func fixedSnapshot() Snapshot {
	buckets := make([]uint64, stats.NumLog2Buckets)
	buckets[stats.Log2Bucket(int64(500*time.Microsecond))] = 40
	buckets[stats.Log2Bucket(int64(2*time.Millisecond))] = 9
	buckets[stats.Log2Bucket(int64(40*time.Millisecond))] = 1
	return Snapshot{
		Workers: 4, ElapsedSec: 12.5,
		Sims: 50, SimSecTotal: 0.9, Events: 1200000, EventsPerSec: 96000,
		PartialSims: 10, EventsSkipped: 400000, PartitionBuilds: 3,
		CacheHits: 7, CacheMisses: 43, CacheStale: 1, MemoHits: 5,
		SurrogatePredictions: 220, SurrogateScreened: 170, SurrogateTrained: 50,
		ErrorsConfig: 2, ErrorsSim: 1,
		Utilization: 0.82,
		SimP50Ms:    0.5, SimP90Ms: 2, SimP99Ms: 40,
		LatencyBuckets: buckets,
	}
}

func fixedStages() []span.StageSnapshot {
	mk := func(counts map[time.Duration]uint64) []uint64 {
		b := make([]uint64, stats.NumLog2Buckets)
		for d, c := range counts {
			b[stats.Log2Bucket(int64(d))] = c
		}
		return b
	}
	return []span.StageSnapshot{
		{Name: "full-sim", Count: 40, Seconds: 0.8,
			Buckets: mk(map[time.Duration]uint64{500 * time.Microsecond: 39, 40 * time.Millisecond: 1})},
		{Name: "cache-probe", Count: 50, Seconds: 0.0005,
			Buckets: mk(map[time.Duration]uint64{8 * time.Microsecond: 50})},
		{Name: "batch-wave", Count: 6, Seconds: 0.88,
			Buckets: mk(map[time.Duration]uint64{130 * time.Millisecond: 6})},
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, fixedSnapshot(), fixedStages()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/telemetry -run Golden -update)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition body drifted from %s — metric names are a stable contract.\ngot:\n%s", golden, got)
	}
}

// TestWritePrometheusCoversSnapshot checks the contract directly: every
// Snapshot field has a metric, and the body is well-formed text format.
func TestWritePrometheusCoversSnapshot(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, fixedSnapshot(), fixedStages()); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, name := range []string{
		"dmexplore_workers 4",
		"dmexplore_elapsed_seconds 12.5",
		"dmexplore_sims_total 50",
		"dmexplore_sim_seconds_total 0.9",
		"dmexplore_events_replayed_total 1200000",
		"dmexplore_events_per_second 96000",
		"dmexplore_partial_sims_total 10",
		"dmexplore_events_skipped_total 400000",
		"dmexplore_partition_builds_total 3",
		"dmexplore_cache_hits_total 7",
		"dmexplore_cache_misses_total 43",
		"dmexplore_cache_stale_total 1",
		"dmexplore_memo_hits_total 5",
		"dmexplore_surrogate_predictions_total 220",
		"dmexplore_surrogate_screened_total 170",
		"dmexplore_surrogate_trained_total 50",
		`dmexplore_errors_total{kind="config"} 2`,
		`dmexplore_errors_total{kind="sim"} 1`,
		"dmexplore_worker_utilization 0.82",
		`dmexplore_sim_latency_quantile_seconds{quantile="0.5"} 0.0005`,
		`dmexplore_sim_latency_quantile_seconds{quantile="0.9"} 0.002`,
		`dmexplore_sim_latency_quantile_seconds{quantile="0.99"} 0.04`,
		`dmexplore_sim_latency_seconds_bucket{le="+Inf"} 50`,
		"dmexplore_sim_latency_seconds_sum 0.9",
		"dmexplore_sim_latency_seconds_count 50",
		`dmexplore_stage_duration_seconds_bucket{stage="full-sim",le="+Inf"} 40`,
		`dmexplore_stage_duration_seconds_count{stage="cache-probe"} 50`,
		`dmexplore_stage_duration_seconds_sum{stage="batch-wave"} 0.88`,
	} {
		if !strings.Contains(body, name+"\n") {
			t.Errorf("exposition missing %q", name)
		}
	}

	// Histogram buckets must be cumulative and end in +Inf == _count.
	line := regexp.MustCompile(`^[a-z0-9_]+(\{[^}]*\})? -?[0-9]`)
	for _, l := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(l, "# HELP ") || strings.HasPrefix(l, "# TYPE ") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed exposition line %q", l)
		}
	}

	// Without a flight recorder the stage family is absent entirely.
	var nb strings.Builder
	if err := WritePrometheus(&nb, fixedSnapshot(), nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(nb.String(), "dmexplore_stage_duration_seconds") {
		t.Error("stage histograms emitted without a recorder")
	}
}
