package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"dmexplore/internal/telemetry/span"
)

// Record is one journal line: the outcome of one configuration in a
// sweep. The journal is the run's flight recorder — when a gigabyte-scale
// sweep dies at configuration 48213, the journal says which configuration,
// how long each one took, and what the cache did, without re-running
// anything.
type Record struct {
	Index  int      `json:"index"`
	Labels []string `json:"labels,omitempty"`

	DurationMS float64 `json:"duration_ms"`
	CacheHit   bool    `json:"cache_hit"`
	MemoHit    bool    `json:"memo_hit,omitempty"`

	// Incremental is set when the configuration was evaluated by the
	// partial-replay path; EventsSkipped is how many trace events that
	// avoided re-simulating versus a full replay. Composed marks the
	// evaluations served by the pool-run memo: a cached standalone
	// general-pool run composed with the partition, no simulation at all.
	Incremental   bool   `json:"incremental,omitempty"`
	EventsSkipped uint64 `json:"events_skipped,omitempty"`
	Composed      bool   `json:"composed,omitempty"`

	// Predicted holds the surrogate's per-objective predictions made when
	// this configuration was submitted for exact evaluation — the pairs
	// the accuracy digest (Spearman rank correlation, MAE) is computed
	// over. Only surrogate-assisted runs populate it.
	Predicted map[string]float64 `json:"predicted,omitempty"`

	// Origin is the configuration's search provenance (strategy, wave,
	// operator, parents, surrogate decision) — present on the record of
	// its first exact evaluation. See Origin and `dmreport -lineage`.
	Origin *Origin `json:"origin,omitempty"`

	// Distributed provenance, stamped by the coordinator/worker service
	// (internal/serve): the 1-based shard and island the record came from
	// and the worker that evaluated it. Zero/empty on local runs, so
	// single-process journals are byte-identical to pre-service ones.
	Shard  int    `json:"shard,omitempty"`
	Island int    `json:"island,omitempty"`
	Worker string `json:"worker,omitempty"`

	// Headline metrics (omitted on error).
	Accesses       uint64  `json:"accesses,omitempty"`
	FootprintBytes int64   `json:"footprint_bytes,omitempty"`
	EnergyNJ       float64 `json:"energy_nj,omitempty"`
	Cycles         uint64  `json:"cycles,omitempty"`
	Failures       uint64  `json:"failures,omitempty"`

	Error string `json:"error,omitempty"`
}

// Journal is an append-only JSONL writer, safe for concurrent use by the
// exploration workers. Writes are buffered; Close flushes.
type Journal struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	n   int
}

// NewJournal wraps an open writer (testing, in-memory use).
func NewJournal(w io.Writer) *Journal {
	bw := bufio.NewWriter(w)
	return &Journal{bw: bw, enc: json.NewEncoder(bw)}
}

// CreateJournal creates (truncating) the journal file at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := NewJournal(f)
	j.c = f
	return j, nil
}

// Record appends one line.
func (j *Journal) Record(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(r); err != nil {
		return err
	}
	j.n++
	return nil
}

// Len returns the number of records appended so far.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Flush pushes buffered records to the underlying writer without
// closing it — the signal-driven finalize path, where workers may still
// be appending and the process is about to exit.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// Close flushes buffered records and closes the underlying file, if any.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.bw.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
		j.c = nil
	}
	return err
}

// ReadJournal parses a JSONL journal back into records.
func ReadJournal(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: journal line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// JournalDigest aggregates a journal for offline inspection (dmreport).
type JournalDigest struct {
	Records     int
	CacheHits   int
	MemoHits    int
	Incremental int // records served by the partial-replay path
	Composed    int // of Incremental: served by the pool-run memo (no sim)
	Predicted   int // records carrying surrogate predictions
	Errors      int
	Infeasible  int     // records with allocation failures
	TotalSec    float64 // summed per-configuration durations
	MaxMS       float64 // slowest configuration
	MaxIndex    int     // its index
}

// Digest reduces records to their aggregate.
func Digest(recs []Record) JournalDigest {
	d := JournalDigest{Records: len(recs)}
	for _, r := range recs {
		if r.CacheHit {
			d.CacheHits++
		}
		if r.MemoHit {
			d.MemoHits++
		}
		if r.Incremental {
			d.Incremental++
		}
		if r.Composed {
			d.Composed++
		}
		if len(r.Predicted) > 0 {
			d.Predicted++
		}
		if r.Error != "" {
			d.Errors++
		}
		if r.Failures > 0 {
			d.Infeasible++
		}
		d.TotalSec += r.DurationMS / 1e3
		if r.DurationMS > d.MaxMS {
			d.MaxMS = r.DurationMS
			d.MaxIndex = r.Index
		}
	}
	return d
}

// CacheSummary is the results-cache section of a run summary.
type CacheSummary struct {
	Path    string `json:"path"`
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stale   uint64 `json:"stale"`
}

// RunSummary is the final artifact written next to the journal: one JSON
// document describing the whole run.
type RunSummary struct {
	Tool           string        `json:"tool"`
	Workload       string        `json:"workload"`
	Space          string        `json:"space"`
	Strategy       string        `json:"strategy,omitempty"`
	Objectives     []string      `json:"objectives,omitempty"`
	Configurations int           `json:"configurations"`
	Feasible       int           `json:"feasible"`
	ParetoFront    int           `json:"pareto_front"`
	JournalRecords int           `json:"journal_records"`
	ElapsedSec     float64       `json:"elapsed_sec"`
	Telemetry      Snapshot      `json:"telemetry"`
	Cache          *CacheSummary `json:"cache,omitempty"`

	// Stages is the flight recorder's per-stage time breakdown (span
	// counts and summed seconds per pipeline stage), present when the
	// run recorded spans.
	Stages []span.StageSnapshot `json:"stages,omitempty"`

	// Interrupted marks a summary written by the SIGINT/SIGTERM
	// finalize path: the run was killed mid-sweep and Configurations
	// counts completions, not the plan.
	Interrupted bool `json:"interrupted,omitempty"`
}

// WriteRunSummary writes the summary as indented JSON at path.
func WriteRunSummary(path string, s RunSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(s)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadRunSummary loads a run-summary.json.
func ReadRunSummary(path string) (RunSummary, error) {
	var s RunSummary
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	return s, nil
}
