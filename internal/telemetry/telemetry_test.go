package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotMergesShards(t *testing.T) {
	col := NewCollector(4)
	for w := 0; w < 4; w++ {
		sh := col.Shard(w)
		sh.ObserveSim(2*time.Millisecond, 100)
		sh.CacheMiss()
		if w%2 == 0 {
			sh.CacheHit()
		}
		sh.AddBusy(3 * time.Millisecond)
	}
	col.Shard(1).MemoHit()
	col.Shard(2).ConfigError()
	col.Shard(3).SimError()
	col.AddCacheStale(5)
	col.start = col.start.Add(-time.Second) // pretend a second elapsed

	s := col.Snapshot()
	if s.Workers != 4 || s.Sims != 4 || s.Events != 400 {
		t.Fatalf("merged counts: %+v", s)
	}
	if s.CacheHits != 2 || s.CacheMisses != 4 || s.MemoHits != 1 || s.CacheStale != 5 {
		t.Fatalf("cache counts: %+v", s)
	}
	if s.ErrorsConfig != 1 || s.ErrorsSim != 1 {
		t.Fatalf("error counts: %+v", s)
	}
	if got := s.CacheHitRate(); got != 2.0/6.0 {
		t.Fatalf("hit rate %v", got)
	}
	if s.Done() != 4+2+1 {
		t.Fatalf("done %d", s.Done())
	}
	if s.SimSecTotal < 0.008-1e-9 || s.SimSecTotal > 0.009 {
		t.Fatalf("sim seconds %v", s.SimSecTotal)
	}
	// 2ms lands in a log2 bucket whose upper bound is < 4ms; every
	// quantile of four identical observations answers that bucket.
	if s.SimP50Ms <= 0 || s.SimP50Ms > 4 || s.SimP50Ms != s.SimP99Ms {
		t.Fatalf("latency quantiles: p50=%v p99=%v", s.SimP50Ms, s.SimP99Ms)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("utilization %v", s.Utilization)
	}
	if str := s.String(); !strings.Contains(str, "4 sims") || !strings.Contains(str, "cache 33% hit") {
		t.Fatalf("summary line: %q", str)
	}
}

// TestSnapshotUnderConcurrentWorkers hammers every shard from its own
// goroutine while a reader snapshots continuously — the -race guard for
// the lock-free recording path.
func TestSnapshotUnderConcurrentWorkers(t *testing.T) {
	const workers, perWorker = 8, 2000
	col := NewCollector(workers)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = col.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := col.Shard(w)
			for i := 0; i < perWorker; i++ {
				sh.ObserveSim(time.Duration(i%37)*time.Microsecond, 10)
				if i%3 == 0 {
					sh.CacheHit()
				} else {
					sh.CacheMiss()
				}
				sh.AddBusy(time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	s := col.Snapshot()
	if s.Sims != workers*perWorker {
		t.Fatalf("sims %d, want %d", s.Sims, workers*perWorker)
	}
	if s.Events != workers*perWorker*10 {
		t.Fatalf("events %d", s.Events)
	}
	if s.CacheHits+s.CacheMisses != workers*perWorker {
		t.Fatalf("cache lookups %d", s.CacheHits+s.CacheMisses)
	}
	var total uint64
	for _, c := range s.LatencyBuckets {
		total += c
	}
	if total != workers*perWorker {
		t.Fatalf("histogram mass %d", total)
	}
}

func TestShardWrapsWhenOversubscribed(t *testing.T) {
	col := NewCollector(2)
	if col.Shard(0) != col.Shard(2) || col.Shard(1) != col.Shard(3) {
		t.Fatal("shard index does not wrap")
	}
	if col.Shard(-1) == nil {
		_ = col.Shard(-1) // negative indices must not panic
	}
	if NewCollector(0).Workers() != 1 {
		t.Fatal("zero workers did not default to one shard")
	}
}
