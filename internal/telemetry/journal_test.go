package telemetry

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Index: 0, Labels: []string{"first", "lifo"}, DurationMS: 1.5,
			Accesses: 100, FootprintBytes: 4096, EnergyNJ: 7.5, Cycles: 999},
		{Index: 1, CacheHit: true, DurationMS: 0.01, Accesses: 100},
		{Index: 2, Error: "configuration 2 [best lifo]: boom", DurationMS: 0.2},
		{Index: 3, MemoHit: true, Failures: 4},
		{Index: 4, Incremental: true, EventsSkipped: 900, DurationMS: 0.4},
		{Index: 5, Incremental: true, Composed: true, EventsSkipped: 1200, DurationMS: 0.05},
	}
	for _, r := range recs {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != len(recs) {
		t.Fatalf("journal length %d", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	if got[0].Labels[1] != "lifo" || got[0].Accesses != 100 || got[0].EnergyNJ != 7.5 {
		t.Fatalf("record 0: %+v", got[0])
	}
	if !got[1].CacheHit || got[2].Error == "" || !got[3].MemoHit {
		t.Fatalf("flags lost: %+v", got[1:])
	}
	if !got[4].Incremental || got[4].Composed || !got[5].Composed {
		t.Fatalf("incremental flags lost: %+v", got[4:])
	}

	d := Digest(got)
	if d.Records != 6 || d.CacheHits != 1 || d.MemoHits != 1 || d.Errors != 1 || d.Infeasible != 1 {
		t.Fatalf("digest: %+v", d)
	}
	if d.Incremental != 2 || d.Composed != 1 {
		t.Fatalf("incremental digest: %+v", d)
	}
	if d.MaxIndex != 0 || d.MaxMS != 1.5 {
		t.Fatalf("slowest: %+v", d)
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Record(Record{Index: w*each + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*each {
		t.Fatalf("read %d records, want %d", len(got), writers*each)
	}
	seen := make(map[int]bool, len(got))
	for _, r := range got {
		if seen[r.Index] {
			t.Fatalf("duplicate index %d", r.Index)
		}
		seen[r.Index] = true
	}
}

func TestRunSummaryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run-summary.json")
	in := RunSummary{
		Tool: "dmexplore", Workload: "easyport", Space: "narrow",
		Strategy: "exhaustive", Objectives: []string{"accesses", "footprint"},
		Configurations: 24, Feasible: 20, ParetoFront: 5, JournalRecords: 24,
		ElapsedSec: 1.25,
		Telemetry:  Snapshot{Workers: 4, Sims: 24, Events: 2400},
		Cache:      &CacheSummary{Path: "c.jsonl", Entries: 24, Hits: 3, Misses: 21, Stale: 1},
	}
	if err := WriteRunSummary(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRunSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Configurations != 24 || out.Telemetry.Sims != 24 || out.Cache.Hits != 3 {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := ReadRunSummary(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing summary accepted")
	}
}
