package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dmexplore/internal/telemetry/span"
)

func TestServeExpvarAndPprof(t *testing.T) {
	col := NewCollector(2)
	col.Shard(0).ObserveSim(time.Millisecond, 500)
	col.Shard(1).CacheHit()

	srv, err := Serve("127.0.0.1:0", col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, ExpvarName) {
		t.Fatalf("/debug/vars missing %s:\n%s", ExpvarName, vars)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(doc[ExpvarName], &snap); err != nil {
		t.Fatalf("telemetry var not a snapshot: %v", err)
	}
	if snap.Sims != 1 || snap.Events != 500 || snap.CacheHits != 1 {
		t.Fatalf("live snapshot: %+v", snap)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%.200s", body)
	}
	if body := get("/"); !strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("root index unexpected: %q", body)
	}

	// A second Serve (fresh collector) must re-point the published var,
	// not panic on duplicate expvar registration.
	col2 := NewCollector(1)
	srv2, err := Serve("127.0.0.1:0", col2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	vars2 := get("/debug/vars") // still via srv: expvar state is global
	var doc2 map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars2), &doc2); err != nil {
		t.Fatal(err)
	}
	var snap2 Snapshot
	if err := json.Unmarshal(doc2[ExpvarName], &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Sims != 0 {
		t.Fatalf("published var not re-pointed at new collector: %+v", snap2)
	}
}

func TestServeMetricsAndHealthz(t *testing.T) {
	col := NewCollector(2)
	col.Shard(0).ObserveSim(time.Millisecond, 500)
	col.Shard(1).CacheHit()
	rec := span.NewRecorder(2, 64)
	rec.Ring(0).Record(span.StageFullSim, 0, time.Millisecond, 500)

	srv, err := Serve("127.0.0.1:0", col, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"dmexplore_sims_total 1",
		"dmexplore_cache_hits_total 1",
		"dmexplore_events_replayed_total 500",
		`dmexplore_stage_duration_seconds_count{stage="full-sim"} 1`,
	} {
		if !strings.Contains(string(body), want+"\n") {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	hresp, err := http.Get("http://" + srv.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || strings.TrimSpace(string(hbody)) != "ok" {
		t.Fatalf("/healthz: %s %q", hresp.Status, hbody)
	}
}

// TestCloseDrainsInFlightScrapeAndReleasesPort proves the graceful
// shutdown contract: a scrape in flight when Close is called still
// completes, and the port is free for rebinding once Close returns.
func TestCloseDrainsInFlightScrapeAndReleasesPort(t *testing.T) {
	col := NewCollector(1)
	srv, err := Serve("127.0.0.1:0", col, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The mux is private, so the slow in-flight request is a real one:
	// /debug/pprof/trace blocks for its ?seconds= duration.
	type result struct {
		status int
		body   string
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr + "/debug/pprof/trace?seconds=1")
		if err != nil {
			got <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- result{status: resp.StatusCode, body: string(body)}
	}()
	// Wait until the request is definitely in flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get("http://" + srv.Addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight scrape severed: %v", r.err)
		}
	case <-time.After(CloseTimeout + 2*time.Second):
		t.Fatal("in-flight scrape never completed")
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(CloseTimeout + 2*time.Second):
		t.Fatal("Close never returned")
	}

	// The exact port must be rebindable immediately.
	srv2, err := Serve(srv.Addr, col, nil)
	if err != nil {
		t.Fatalf("port not released: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}
