package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeExpvarAndPprof(t *testing.T) {
	col := NewCollector(2)
	col.Shard(0).ObserveSim(time.Millisecond, 500)
	col.Shard(1).CacheHit()

	srv, err := Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, ExpvarName) {
		t.Fatalf("/debug/vars missing %s:\n%s", ExpvarName, vars)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(doc[ExpvarName], &snap); err != nil {
		t.Fatalf("telemetry var not a snapshot: %v", err)
	}
	if snap.Sims != 1 || snap.Events != 500 || snap.CacheHits != 1 {
		t.Fatalf("live snapshot: %+v", snap)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%.200s", body)
	}
	if body := get("/"); !strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("root index unexpected: %q", body)
	}

	// A second Serve (fresh collector) must re-point the published var,
	// not panic on duplicate expvar registration.
	col2 := NewCollector(1)
	srv2, err := Serve("127.0.0.1:0", col2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	vars2 := get("/debug/vars") // still via srv: expvar state is global
	var doc2 map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars2), &doc2); err != nil {
		t.Fatal(err)
	}
	var snap2 Snapshot
	if err := json.Unmarshal(doc2[ExpvarName], &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Sims != 0 {
		t.Fatalf("published var not re-pointed at new collector: %+v", snap2)
	}
}
