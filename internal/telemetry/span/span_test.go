package span

import (
	"bytes"
	"testing"
	"time"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Ring(0).Record(StageFullSim, 10*time.Microsecond, 5*time.Microsecond, 100)
	r.Ring(1).Record(StagePartialSim, 20*time.Microsecond, 3*time.Microsecond, 40)
	r.Coord().Record(StageBatchWave, 5*time.Microsecond, 30*time.Microsecond, 2)

	snap := r.Snapshot()
	if len(snap) != NumStages {
		t.Fatalf("snapshot has %d stages, want %d", len(snap), NumStages)
	}
	byName := map[string]StageSnapshot{}
	for _, row := range snap {
		byName[row.Name] = row
	}
	if row := byName["full-sim"]; row.Count != 1 || row.Seconds != 5e-6 {
		t.Fatalf("full-sim row: %+v", row)
	}
	if row := byName["partial-sim"]; row.Count != 1 {
		t.Fatalf("partial-sim row: %+v", row)
	}
	if row := byName["batch-wave"]; row.Count != 1 || row.Seconds != 30e-6 {
		t.Fatalf("batch-wave row: %+v", row)
	}
	if row := byName["compile"]; row.Count != 0 {
		t.Fatalf("untouched stage recorded spans: %+v", row)
	}

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, dropped, err := ReadTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d spans", dropped)
	}
	var xEvents, metaEvents int
	names := map[string]bool{}
	for _, ev := range events {
		switch ev.Phase {
		case "X":
			xEvents++
			names[ev.Name] = true
		case "M":
			metaEvents++
		}
	}
	if xEvents != 3 {
		t.Fatalf("trace has %d X events, want 3", xEvents)
	}
	if metaEvents != 3 { // worker 0, worker 1, coordinator
		t.Fatalf("trace has %d metadata events, want 3", metaEvents)
	}
	for _, want := range []string{"full-sim", "partial-sim", "batch-wave"} {
		if !names[want] {
			t.Fatalf("trace missing %q: %v", want, names)
		}
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	r := NewRecorder(1, 4)
	ring := r.Ring(0)
	for i := 0; i < 10; i++ {
		ring.Record(StageFullSim, time.Duration(i)*time.Microsecond, time.Microsecond, int64(i))
	}
	if got := ring.Len(); got != 10 {
		t.Fatalf("ring recorded %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped %d, want 6", got)
	}
	spans := r.ringSpans(0)
	if len(spans) != 4 {
		t.Fatalf("live window has %d spans, want 4", len(spans))
	}
	// Oldest-first live window: args 6,7,8,9.
	for i, sp := range spans {
		if sp.Arg != int64(6+i) {
			t.Fatalf("span %d arg %d, want %d", i, sp.Arg, 6+i)
		}
	}
	// Aggregates keep the full count even after the buffer wrapped.
	if row := r.Snapshot()[StageFullSim]; row.Count != 10 {
		t.Fatalf("aggregate count %d, want 10", row.Count)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if ring := r.Ring(0); ring != nil {
		t.Fatal("nil recorder returned a ring")
	}
	if ring := r.Coord(); ring != nil {
		t.Fatal("nil recorder returned a coord ring")
	}
	var ring *Ring
	ring.Record(StageFullSim, 0, time.Microsecond, 0) // must not panic
	ring.Since(StageFullSim, time.Now(), 0)
	if ring.Len() != 0 {
		t.Fatal("nil ring recorded")
	}
	if r.Snapshot() != nil || r.Dropped() != 0 || r.Workers() != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
}

// TestRecordZeroAlloc guards the hot-path contract: recording a span
// into a warm ring performs no heap allocations.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(1, 64)
	ring := r.Ring(0)
	start := time.Now()
	avg := testing.AllocsPerRun(100, func() {
		ring.Since(StageFullSim, start, 1234)
	})
	if avg != 0 {
		t.Fatalf("Ring.Since allocates %.1f per record, want 0", avg)
	}
	avg = testing.AllocsPerRun(100, func() {
		ring.Record(StageCacheProbe, time.Microsecond, time.Microsecond, 1)
	})
	if avg != 0 {
		t.Fatalf("Ring.Record allocates %.1f per record, want 0", avg)
	}
}

func TestStageNamesStable(t *testing.T) {
	want := []string{
		"log-ingest", "trace-ingest", "block-decode", "compile",
		"partition-build", "batch-wave", "surrogate-screen",
		"partial-sim", "full-sim", "cache-probe", "journal-flush",
		"compose",
	}
	stages := Stages()
	if len(stages) != len(want) {
		t.Fatalf("%d stages, want %d", len(stages), len(want))
	}
	for i, st := range stages {
		if st.String() != want[i] {
			t.Fatalf("stage %d named %q, want %q", i, st.String(), want[i])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage not unknown")
	}
}
