// Package span is the exploration pipeline's flight recorder: typed,
// timestamped spans for every pipeline stage (trace/log ingest, v2 block
// decode, compile, partition build, batch waves, surrogate screening,
// partial and full simulations, cache probes, journal flushes), recorded
// into fixed-capacity per-worker ring buffers with zero steady-state
// allocation, and exportable as Chrome trace-event JSON for Perfetto.
//
// Recording is built for the replay hot path, mirroring the telemetry
// shards: a worker owns one Ring, a span record is an atomic slot claim
// plus a handful of uncontended atomic adds into padded pre-sized arrays
// — no locks, no maps, no allocation — so the AllocsPerRun guard on the
// steady-state replay loop keeps reporting zero with the recorder
// attached. Aggregate readers (the Prometheus handler, the run-summary
// stage table) merge the per-stage atomics at any time; the raw ring
// entries are read only after the workers have quiesced (end of run or
// signal-driven finalize), so the trace export never races a recording
// worker over span contents.
package span

import (
	"sync/atomic"
	"time"

	"dmexplore/internal/stats"
)

// Stage identifies one pipeline stage. The String names are a stable
// contract: they appear in trace files, run summaries and as Prometheus
// label values (and will become per-island labels in the distributed
// service), so renaming one is a breaking change.
type Stage uint8

const (
	StageLogIngest       Stage = iota // parsing a profile log into summaries
	StageTraceIngest                  // reading or generating a workload trace
	StageBlockDecode                  // decoding block-framed v2 payloads
	StageCompile                      // compiling a trace into columnar slabs
	StagePartitionBuild               // invariant-partition replay (incremental path)
	StageBatchWave                    // one evaluation wave across the worker pool
	StageSurrogateScreen              // surrogate ranking/screening of a candidate set
	StagePartialSim                   // partial (incremental) simulation of one config
	StageFullSim                      // full replay simulation of one config
	StageCacheProbe                   // results-cache lookup for one config
	StageJournalFlush                 // flushing the JSONL journal to disk
	StageCompose                      // memoized pool-run composition of one config (no sim)

	NumStages int = iota
)

var stageNames = [NumStages]string{
	StageLogIngest:       "log-ingest",
	StageTraceIngest:     "trace-ingest",
	StageBlockDecode:     "block-decode",
	StageCompile:         "compile",
	StagePartitionBuild:  "partition-build",
	StageBatchWave:       "batch-wave",
	StageSurrogateScreen: "surrogate-screen",
	StagePartialSim:      "partial-sim",
	StageFullSim:         "full-sim",
	StageCacheProbe:      "cache-probe",
	StageJournalFlush:    "journal-flush",
	StageCompose:         "compose",
}

// String returns the stage's stable wire name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages returns every stage in declaration order — the iteration order
// of the metric and summary surfaces, so exposition is deterministic.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Span is one recorded interval. Start is nanoseconds since the
// recorder's epoch; Arg is a stage-specific payload (events replayed,
// candidates scored, bytes decoded, records flushed).
type Span struct {
	Stage Stage
	Start int64 // ns since Recorder epoch
	Dur   int64 // ns
	Arg   int64
}

// stageAgg is one stage's merged accounting within a ring: span count,
// total nanoseconds, and a log2 duration histogram. All atomics, so the
// Prometheus handler can scrape mid-run without perturbing the worker.
type stageAgg struct {
	count atomic.Uint64
	nanos atomic.Int64
	hist  [stats.NumLog2Buckets]atomic.Uint64
}

// Ring is one worker's span buffer: a fixed-capacity circular buffer of
// raw spans plus per-stage aggregates. Slots are claimed with an atomic
// counter, so occasional multi-goroutine writers (the coordinator ring)
// stay safe; the raw entries are read only after writers quiesce. The
// struct is padded to keep adjacent rings out of each other's cache
// lines.
type Ring struct {
	epoch  time.Time
	spans  []Span
	n      atomic.Uint64 // total spans recorded (wraps over the buffer)
	stages [NumStages]stageAgg

	_ [64]byte
}

// Record appends one span with an explicit start offset and duration.
// Nil-safe: a nil ring records nothing, so call sites need no guard.
func (r *Ring) Record(st Stage, start, dur time.Duration, arg int64) {
	if r == nil {
		return
	}
	ns := dur.Nanoseconds()
	agg := &r.stages[st]
	agg.count.Add(1)
	agg.nanos.Add(ns)
	agg.hist[stats.Log2Bucket(ns)].Add(1)
	i := r.n.Add(1) - 1
	r.spans[i%uint64(len(r.spans))] = Span{
		Stage: st,
		Start: start.Nanoseconds(),
		Dur:   ns,
		Arg:   arg,
	}
}

// Since records a span that started at the wall-clock instant start and
// ends now — the Begin/End form the instrumentation sites use:
//
//	start := time.Now()
//	...stage work...
//	ring.Since(span.StageFullSim, start, int64(events))
//
// Nil-safe like Record.
func (r *Ring) Since(st Stage, start time.Time, arg int64) {
	if r == nil {
		return
	}
	r.Record(st, start.Sub(r.epoch), time.Since(start), arg)
}

// Len returns how many spans the ring has recorded (including ones the
// buffer has since overwritten).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.n.Load()
}

// Recorder owns the rings of one run: one per worker plus a coordinator
// ring for the stages driven by the strategy goroutine (batch waves,
// surrogate screening, ingest, compile, journal flushes).
type Recorder struct {
	epoch time.Time
	rings []Ring
}

// DefaultRingCapacity is the per-ring span capacity when NewRecorder is
// given none: large enough that a multi-thousand-configuration sweep
// keeps every span, small enough (~40 B/span) to stay off any budget.
const DefaultRingCapacity = 1 << 14

// NewRecorder returns a recorder with one ring per worker plus the
// coordinator ring, all sharing one epoch. workers <= 0 allocates a
// single worker ring; capacity <= 0 uses DefaultRingCapacity.
func NewRecorder(workers, capacity int) *Recorder {
	if workers <= 0 {
		workers = 1
	}
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	epoch := time.Now()
	rings := make([]Ring, workers+1)
	for i := range rings {
		rings[i].epoch = epoch
		rings[i].spans = make([]Span, capacity)
	}
	return &Recorder{epoch: epoch, rings: rings}
}

// Ring returns worker i's ring, wrapping like telemetry.Collector.Shard
// when more workers than rings show up. Nil-safe: a nil recorder returns
// a nil ring, which records nothing.
func (r *Recorder) Ring(i int) *Ring {
	if r == nil {
		return nil
	}
	if i < 0 {
		i = -i
	}
	return &r.rings[i%(len(r.rings)-1)]
}

// Coord returns the coordinator ring (ingest, compile, batch waves,
// surrogate screening, journal flushes). Nil-safe.
func (r *Recorder) Coord() *Ring {
	if r == nil {
		return nil
	}
	return &r.rings[len(r.rings)-1]
}

// Workers returns the number of worker rings (the coordinator ring is
// extra).
func (r *Recorder) Workers() int {
	if r == nil {
		return 0
	}
	return len(r.rings) - 1
}

// Epoch returns the recorder's time origin.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// StageSnapshot is one stage's merged accounting across every ring — the
// run-summary breakdown row and the Prometheus histogram source.
type StageSnapshot struct {
	Stage   Stage    `json:"-"`
	Name    string   `json:"stage"`
	Count   uint64   `json:"count"`
	Seconds float64  `json:"seconds"`
	Buckets []uint64 `json:"-"` // merged log2 duration histogram (ns buckets)
}

// Snapshot merges every ring into one row per stage, in stage order. All
// stages are present (count 0 when never recorded) so metric names stay
// stable across runs.
func (r *Recorder) Snapshot() []StageSnapshot {
	if r == nil {
		return nil
	}
	out := make([]StageSnapshot, NumStages)
	for st := 0; st < NumStages; st++ {
		row := &out[st]
		row.Stage = Stage(st)
		row.Name = Stage(st).String()
		row.Buckets = make([]uint64, stats.NumLog2Buckets)
		var nanos int64
		for i := range r.rings {
			agg := &r.rings[i].stages[st]
			row.Count += agg.count.Load()
			nanos += agg.nanos.Load()
			for b := range agg.hist {
				row.Buckets[b] += agg.hist[b].Load()
			}
		}
		row.Seconds = float64(nanos) / 1e9
	}
	return out
}

// Dropped returns how many spans were overwritten before export: the sum
// over rings of max(0, recorded - capacity).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var dropped uint64
	for i := range r.rings {
		if n := r.rings[i].n.Load(); n > uint64(len(r.rings[i].spans)) {
			dropped += n - uint64(len(r.rings[i].spans))
		}
	}
	return dropped
}
