package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Chrome trace-event export: the flight recorder's on-demand dump,
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing. Every
// worker ring becomes one thread of a single "dmexplore" process;
// complete ("ph":"X") events carry the stage name, the microsecond
// start/duration, and the stage-specific arg.
//
// Export reads the raw ring entries, so it must run after the recording
// workers have quiesced — end of run, or the signal-driven finalize
// after the session has been abandoned.

// traceEvent is one Chrome trace-event JSON object.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds since epoch
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the exported document shape.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Dropped         uint64       `json:"dmexploreDroppedSpans,omitempty"`
}

// ringSpans returns ring i's recorded spans oldest-first (the live
// window when the ring has wrapped).
func (r *Recorder) ringSpans(i int) []Span {
	ring := &r.rings[i]
	n := ring.n.Load()
	capacity := uint64(len(ring.spans))
	if n <= capacity {
		return append([]Span(nil), ring.spans[:n]...)
	}
	// Wrapped: the oldest live span sits at n % capacity.
	head := int(n % capacity)
	out := make([]Span, 0, capacity)
	out = append(out, ring.spans[head:]...)
	out = append(out, ring.spans[:head]...)
	return out
}

// WriteTrace writes the recorder's contents as Chrome trace-event JSON.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("span: nil recorder")
	}
	doc := traceFile{DisplayTimeUnit: "ms", Dropped: r.Dropped()}
	for tid := range r.rings {
		name := fmt.Sprintf("worker %d", tid)
		if tid == len(r.rings)-1 {
			name = "coordinator"
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": name},
		})
		spans := r.ringSpans(tid)
		// Sort by start so nested stages (a batch wave enclosing its sims,
		// an ingest enclosing its block decode) render as stacks.
		sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
		for _, sp := range spans {
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name:  sp.Stage.String(),
				Cat:   "dmexplore",
				Phase: "X",
				TS:    float64(sp.Start) / 1e3,
				Dur:   float64(sp.Dur) / 1e3,
				PID:   1,
				TID:   tid,
				Args:  map[string]any{"arg": sp.Arg},
			})
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceFile writes the trace-event dump to path.
func (r *Recorder) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadTrace parses a trace file written by WriteTrace back into its
// events — the offline-analysis and test entry point.
func ReadTrace(data []byte) (events []struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	TID   int     `json:"tid"`
}, dropped uint64, err error) {
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
		Dropped uint64 `json:"dmexploreDroppedSpans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, 0, fmt.Errorf("span: trace file: %w", err)
	}
	return doc.TraceEvents, doc.Dropped, nil
}
