package telemetry

import "sort"

// Origin is the provenance of one evaluated configuration: which
// strategy submitted it, in which evaluation wave, through which search
// operator, derived from which parent configuration(s), and what the
// surrogate decided about it. It rides the journal record of the
// configuration's first exact evaluation, so `dmreport -lineage` can
// reconstruct the ancestry of every Pareto-front member after the run.
type Origin struct {
	// Strategy is the search that submitted the configuration ("sweep",
	// "nsga2", "hillclimb", "anneal", "screen-refine").
	Strategy string `json:"strategy"`

	// Wave is the 1-based fresh-evaluation wave the configuration was
	// profiled in — the generation counter of the batched pipeline.
	Wave int `json:"wave"`

	// Op is the search operator that produced the configuration:
	// "probe" (uniform sampling), "seed" (initial population),
	// "restart" (random search start), "neighbor" (Hamming-1 move),
	// "propose" (annealing proposal), "screen" (screening sample),
	// "refine" (front-neighbourhood ring), "crossover" (NSGA-II
	// breeding), "sweep" (exhaustive enumeration).
	Op string `json:"op"`

	// Parents are the configuration indices the operator derived this
	// one from (one for neighbourhood moves, two for crossover, none
	// for random draws).
	Parents []int `json:"parents,omitempty"`

	// SurrogateRank is the candidate's 1-based position in the last
	// surrogate ranking it appeared in before evaluation; 0 means it was
	// never ranked (no surrogate, or models still warming up).
	SurrogateRank int `json:"surrogate_rank,omitempty"`

	// Admit records how a surrogate screen admitted the candidate:
	// "score" (predicted-best slots), "explore" (highest-leverage
	// ε-exploration slots), or "" when no screen gated it.
	Admit string `json:"admit,omitempty"`
}

// LineageIndex reduces journal records to one record per configuration
// index, preferring the record that carries an Origin (the first exact
// evaluation) over memo- or cache-hit re-journalings of the same index.
func LineageIndex(recs []Record) map[int]Record {
	byIdx := make(map[int]Record, len(recs))
	for _, r := range recs {
		prev, seen := byIdx[r.Index]
		if !seen || (prev.Origin == nil && r.Origin != nil) {
			byIdx[r.Index] = r
		}
	}
	return byIdx
}

// OpCount is one operator's attribution row: how many of the inspected
// configurations that operator produced.
type OpCount struct {
	Op    string
	Count int
}

// CountOps aggregates the operators that produced the given indices,
// sorted by descending count then name. Indices without an origin are
// attributed to "(unknown)".
func CountOps(byIdx map[int]Record, indices []int) []OpCount {
	counts := make(map[string]int)
	for _, idx := range indices {
		op := "(unknown)"
		if rec, ok := byIdx[idx]; ok && rec.Origin != nil {
			op = rec.Origin.Op
		}
		counts[op]++
	}
	out := make([]OpCount, 0, len(counts))
	for op, n := range counts {
		out = append(out, OpCount{Op: op, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// Ancestors returns the full ancestor closure of idx (idx excluded),
// walking Origin.Parents through byIdx. Safe on cyclic or truncated
// journals: every index is visited at most once.
func Ancestors(byIdx map[int]Record, idx int) []int {
	seen := map[int]bool{idx: true}
	var out []int
	stack := []int{idx}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rec, ok := byIdx[cur]
		if !ok || rec.Origin == nil {
			continue
		}
		for _, p := range rec.Origin.Parents {
			if seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
			stack = append(stack, p)
		}
	}
	sort.Ints(out)
	return out
}
