package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"dmexplore/internal/telemetry/span"
)

// The expvar variable is published once per process but must follow the
// collector of the current run, so the published Func reads an atomic
// pointer the latest Serve call installs.
var (
	expvarOnce sync.Once
	currentCol atomic.Pointer[Collector]
)

// ExpvarName is the name the live telemetry snapshot is published under
// in /debug/vars.
const ExpvarName = "dmexplore.telemetry"

func publishExpvar(col *Collector) {
	currentCol.Store(col)
	expvarOnce.Do(func() {
		expvar.Publish(ExpvarName, expvar.Func(func() any {
			c := currentCol.Load()
			if c == nil {
				return nil
			}
			return c.Snapshot()
		}))
	})
}

// Server is a running metrics endpoint.
type Server struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
	done chan struct{}
}

// CloseTimeout bounds how long Server.Close waits for in-flight scrapes
// before forcing the listener shut.
const CloseTimeout = 5 * time.Second

// Serve starts an HTTP listener at addr exposing:
//
//	/metrics      — Prometheus text exposition of the live snapshot,
//	                plus per-stage histograms when spans is non-nil
//	/healthz      — liveness probe, always "ok"
//	/debug/vars   — expvar, including the live telemetry snapshot
//	/debug/pprof/ — net/http/pprof profiles for diagnosing long sweeps
//
// spans may be nil; /metrics then omits the stage histograms. It
// returns once the listener is bound; the server runs until Close.
func Serve(addr string, col *Collector, spans *span.Recorder) (*Server, error) {
	publishExpvar(col)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var stages []span.StageSnapshot
		if spans != nil {
			stages = spans.Snapshot()
		}
		// A scrape races the run by design: the snapshot reads atomic
		// aggregates, never the raw rings.
		_ = WritePrometheus(w, col.Snapshot(), stages)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "dmexplore telemetry\n\n/metrics\n/healthz\n/debug/vars\n/debug/pprof/\n")
	})
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal Close path; anything else is
		// invisible to the sweep and intentionally dropped.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Close stops accepting connections, lets in-flight scrapes finish for
// up to CloseTimeout, then forces the rest shut and waits for the serve
// loop to exit.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), CloseTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline hit with scrapes still open: sever them.
		err = s.srv.Close()
	}
	<-s.done
	return err
}
