package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultProgressInterval throttles terminal progress to ~10 Hz so an
// exhaustive sweep spends its time simulating, not in fmt/IO.
const DefaultProgressInterval = 100 * time.Millisecond

// Progress renders a single-line, throttled progress report with
// throughput, cache-hit rate, and ETA. Its Update method has the
// core.Runner Progress callback signature and is safe for concurrent
// use; between prints it costs two atomic loads and a compare.
type Progress struct {
	w        io.Writer
	col      *Collector // optional: adds cache-hit rate to the line
	interval time.Duration
	start    time.Time

	last atomic.Int64 // nanos since start of the last accepted print
	mu   sync.Mutex   // serializes the actual writes
}

// NewProgress returns a reporter writing to w. col may be nil; interval
// <= 0 uses DefaultProgressInterval.
func NewProgress(w io.Writer, col *Collector, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return &Progress{w: w, col: col, interval: interval, start: time.Now()}
}

// Update reports done/total. Prints are throttled to one per interval;
// the final update (done == total) always prints and ends the line.
func (p *Progress) Update(done, total int) {
	final := done >= total
	now := time.Since(p.start).Nanoseconds()
	last := p.last.Load()
	if !final {
		if now-last < p.interval.Nanoseconds() {
			return
		}
		// One goroutine wins the right to print this tick; losers drop
		// their update rather than queue on the mutex.
		if !p.last.CompareAndSwap(last, now) {
			return
		}
	} else {
		p.last.Store(now)
	}

	elapsed := time.Duration(now)
	line := fmt.Sprintf("\r  profiled %d/%d (%.0f%%)", done, total,
		100*float64(done)/float64(max(total, 1)))
	if rate := float64(done) / elapsed.Seconds(); rate > 0 && elapsed > 0 {
		line += fmt.Sprintf("  %.0f cfg/s", rate)
		if !final {
			line += fmt.Sprintf("  ETA %s", formatETA(etaFor(total-done, rate)))
		}
	}
	if p.col != nil {
		s := p.col.Snapshot()
		if s.CacheHits+s.CacheMisses > 0 {
			line += fmt.Sprintf("  cache %.0f%%", 100*s.CacheHitRate())
		}
		if s.PartialSims > 0 || s.ComposedEvals > 0 {
			// Evaluation split: memo compositions / partial sims / full
			// sims — where the incremental machinery is saving work.
			line += fmt.Sprintf("  memo/part/full %d/%d/%d",
				s.ComposedEvals, s.PartialSims, s.Sims-s.PartialSims)
		}
	}
	p.mu.Lock()
	fmt.Fprint(p.w, line)
	if final {
		fmt.Fprintln(p.w)
	}
	p.mu.Unlock()
}

// maxETA caps the printed estimate. The first ticks of a slow run see a
// near-zero rate (one config done after many seconds), projecting
// absurd horizons — or, divided far enough, overflowing the int64
// Duration into garbage. Past this cap the estimate carries no
// information and is suppressed.
const maxETA = 99 * time.Hour

// etaFor projects the remaining time at the observed rate, or -1 when
// the projection is meaningless (rate ~0, overflow, or beyond maxETA).
func etaFor(remaining int, rate float64) time.Duration {
	if remaining <= 0 {
		return 0
	}
	secs := float64(remaining) / rate
	if !(secs >= 0) || secs > maxETA.Seconds() {
		return -1
	}
	return time.Duration(secs * float64(time.Second))
}

// formatETA renders a duration as mm:ss (or h:mm:ss beyond an hour),
// rounded up so the ETA never reads 0:00 while work remains; negative
// durations mean "unknown" and render as --:--.
func formatETA(d time.Duration) string {
	if d < 0 {
		return "--:--"
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs >= 3600 {
		return fmt.Sprintf("%d:%02d:%02d", secs/3600, secs%3600/60, secs%60)
	}
	return fmt.Sprintf("%d:%02d", secs/60, secs%60)
}
