package stats

// Ridge is a small incremental ridge regressor: it learns a linear map
// from a fixed-dimension feature vector to one scalar target, one
// observation at a time, in O(d²) per update. The surrogate screening
// layer trains one Ridge per exploration objective from every exact
// simulation result the run produces and uses the predictions to rank
// candidate configurations before spending real simulations on them.
//
// The model maintains the inverse regularized Gram matrix
// A⁻¹ = (λI + Σ xxᵀ)⁻¹ directly via the Sherman–Morrison rank-1 update,
// so observing and predicting never solve a linear system. Besides the
// point prediction wᵀx it exposes the leverage xᵀA⁻¹x — the classic
// ridge predictive-variance score, large for feature directions the
// model has not seen — which the screening policy uses to pick
// uncertainty explorers.
//
// Everything is plain float64 arithmetic in a fixed order, so a Ridge
// fed the same observation sequence produces bit-identical predictions
// on every run — the property the deterministic search strategies
// require. A Ridge is not safe for concurrent use; the search layer
// only touches it from the coordinating goroutine.
type Ridge struct {
	d     int
	ainv  []float64 // d×d row-major inverse Gram matrix
	b     []float64 // Σ y·x
	w     []float64 // solved weights, rebuilt lazily from ainv·b
	tmp   []float64 // scratch: A⁻¹x during updates and leverage
	n     int64
	dirty bool
}

// NewRidge returns a regressor over d-dimensional features with ridge
// penalty lambda (> 0; the penalty keeps A invertible and the update
// stable even under constant or collinear feature columns).
func NewRidge(d int, lambda float64) *Ridge {
	if d <= 0 {
		panic("stats: ridge dimension must be positive")
	}
	if lambda <= 0 {
		panic("stats: ridge lambda must be positive")
	}
	r := &Ridge{
		d:    d,
		ainv: make([]float64, d*d),
		b:    make([]float64, d),
		w:    make([]float64, d),
		tmp:  make([]float64, d),
	}
	for i := 0; i < d; i++ {
		r.ainv[i*d+i] = 1 / lambda
	}
	return r
}

// Dim returns the feature dimension.
func (r *Ridge) Dim() int { return r.d }

// N returns the number of observations absorbed so far.
func (r *Ridge) N() int64 { return r.n }

// Observe absorbs one (x, y) observation. x must have length Dim.
func (r *Ridge) Observe(x []float64, y float64) {
	if len(x) != r.d {
		panic("stats: ridge observation dimension mismatch")
	}
	d := r.d
	// tmp = A⁻¹x (A⁻¹ is symmetric, so row-major rows are columns too).
	for i := 0; i < d; i++ {
		s := 0.0
		row := r.ainv[i*d : i*d+d]
		for j, xj := range x {
			s += row[j] * xj
		}
		r.tmp[i] = s
	}
	denom := 1.0
	for i, xi := range x {
		denom += xi * r.tmp[i]
	}
	// Sherman–Morrison: A⁻¹ ← A⁻¹ − (A⁻¹x)(A⁻¹x)ᵀ / (1 + xᵀA⁻¹x).
	inv := 1 / denom
	for i := 0; i < d; i++ {
		ti := r.tmp[i] * inv
		if ti == 0 {
			continue
		}
		row := r.ainv[i*d : i*d+d]
		for j := 0; j < d; j++ {
			row[j] -= ti * r.tmp[j]
		}
	}
	for i, xi := range x {
		r.b[i] += y * xi
	}
	r.n++
	r.dirty = true
}

// refresh rebuilds the weight vector from the current A⁻¹ and b.
func (r *Ridge) refresh() {
	if !r.dirty {
		return
	}
	d := r.d
	for i := 0; i < d; i++ {
		s := 0.0
		row := r.ainv[i*d : i*d+d]
		for j, bj := range r.b {
			s += row[j] * bj
		}
		r.w[i] = s
	}
	r.dirty = false
}

// Predict returns the point prediction wᵀx and the leverage xᵀA⁻¹x for
// the feature vector. The leverage shrinks toward zero as observations
// accumulate along x's direction; before any training it is x²/λ.
func (r *Ridge) Predict(x []float64) (mean, leverage float64) {
	if len(x) != r.d {
		panic("stats: ridge prediction dimension mismatch")
	}
	r.refresh()
	d := r.d
	for i, wi := range r.w {
		mean += wi * x[i]
	}
	for i := 0; i < d; i++ {
		s := 0.0
		row := r.ainv[i*d : i*d+d]
		for j, xj := range x {
			s += row[j] * xj
		}
		leverage += x[i] * s
	}
	return mean, leverage
}
