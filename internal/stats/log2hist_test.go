package stats

import "testing"

func TestLog2Bucket(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{1024, 10}, {1025, 11},
		{1 << 42, 42}, {1<<42 + 1, 43},
		{1 << 60, NumLog2Buckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := Log2Bucket(c.v); got != c.want {
			t.Errorf("Log2Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2BucketBoundsRoundTrip(t *testing.T) {
	for i := 0; i < NumLog2Buckets; i++ {
		lo, hi := Log2BucketLo(i), Log2BucketHi(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if got := Log2Bucket(hi); got != i {
			t.Errorf("bucket %d: hi %d maps to bucket %d", i, hi, got)
		}
		if i > 0 {
			if got := Log2Bucket(lo); got != i {
				t.Errorf("bucket %d: lo %d maps to bucket %d", i, lo, got)
			}
			if Log2BucketHi(i-1)+1 != lo {
				t.Errorf("bucket %d: gap below lo %d", i, lo)
			}
		}
	}
}

// Regression: Log2BucketLo used to extrapolate past the overflow bucket
// (and overflow int64 past i = 63) instead of clamping like Log2BucketHi,
// so quantile-style walks over oversized count slices produced bounds
// beyond anything the histogram can record.
func TestLog2BucketClampAtTop(t *testing.T) {
	top := NumLog2Buckets - 1
	for _, i := range []int{NumLog2Buckets, NumLog2Buckets + 1, 63, 64, 65, 1 << 20} {
		if got := Log2BucketLo(i); got != Log2BucketLo(top) {
			t.Errorf("Log2BucketLo(%d) = %d, want clamp to %d", i, got, Log2BucketLo(top))
		}
		if got := Log2BucketHi(i); got != Log2BucketHi(top) {
			t.Errorf("Log2BucketHi(%d) = %d, want clamp to %d", i, got, Log2BucketHi(top))
		}
		if lo, hi := Log2BucketLo(i), Log2BucketHi(i); lo <= 0 || lo > hi {
			t.Errorf("bucket %d: inconsistent bounds lo %d hi %d", i, lo, hi)
		}
	}
	// A counts slice longer than NumLog2Buckets (a forward-compatible
	// reader merging a wider snapshot) must not push the quantile past the
	// overflow bucket's bound.
	long := make([]uint64, NumLog2Buckets+8)
	long[len(long)-1] = 5
	for _, p := range []float64{0, 0.5, 1} {
		if got := Log2Quantile(long, p); got != Log2BucketHi(top) {
			t.Errorf("oversized counts p%v = %d, want %d", p, got, Log2BucketHi(top))
		}
	}
}

func TestLog2Quantile(t *testing.T) {
	var counts [NumLog2Buckets]uint64
	if got := Log2Quantile(counts[:], 0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	// 90 observations of ~1000 (bucket 10), 10 of ~1e6 (bucket 20).
	counts[Log2Bucket(1000)] = 90
	counts[Log2Bucket(1_000_000)] = 10
	if got := Log2Quantile(counts[:], 0.5); got != Log2BucketHi(10) {
		t.Errorf("p50 = %d, want %d", got, Log2BucketHi(10))
	}
	if got := Log2Quantile(counts[:], 0.99); got != Log2BucketHi(20) {
		t.Errorf("p99 = %d, want %d", got, Log2BucketHi(20))
	}
	if got := Log2Quantile(counts[:], 1.0); got != Log2BucketHi(20) {
		t.Errorf("p100 = %d, want %d", got, Log2BucketHi(20))
	}
	// All mass in one bucket: every quantile answers that bucket.
	var one [NumLog2Buckets]uint64
	one[3] = 7
	for _, p := range []float64{0, 0.1, 0.5, 0.999, 1} {
		if got := Log2Quantile(one[:], p); got != Log2BucketHi(3) {
			t.Errorf("single-bucket p%v = %d", p, got)
		}
	}
}
