package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Add(74)
	h.Add(74)
	h.Add(1500)
	if h.Total() != 3 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Count(74) != 2 || h.Count(1500) != 1 || h.Count(999) != 0 {
		t.Fatal("counts wrong")
	}
	if h.Min() != 74 || h.Max() != 1500 {
		t.Fatalf("min/max %d/%d", h.Min(), h.Max())
	}
	want := float64(74+74+1500) / 3
	if h.Mean() != want {
		t.Fatalf("mean %v want %v", h.Mean(), want)
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram()
	h.AddN(8, 5)
	h.AddN(8, 0)  // no-op
	h.AddN(8, -3) // no-op
	if h.Count(8) != 5 || h.Total() != 5 {
		t.Fatalf("AddN wrong: count=%d total=%d", h.Count(8), h.Total())
	}
}

func TestHistogramValuesSorted(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, 1, 9, 1, 3} {
		h.Add(v)
	}
	vs := h.Values()
	want := []int64{1, 3, 5, 9}
	if len(vs) != len(want) {
		t.Fatalf("values %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("values %v want %v", vs, want)
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{{0, 1}, {0.5, 50}, {0.9, 90}, {1, 100}, {-1, 1}, {2, 100}}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Fatalf("P%v = %d want %d", c.p, got, c.want)
		}
	}
}

func TestHistogramTopN(t *testing.T) {
	h := NewHistogram()
	h.AddN(74, 100)
	h.AddN(1500, 40)
	h.AddN(32, 40)
	h.AddN(8, 1)
	top := h.TopN(3)
	if len(top) != 3 {
		t.Fatalf("top %v", top)
	}
	if top[0].Value != 74 {
		t.Fatalf("dominant value %d", top[0].Value)
	}
	// Tie between 1500 and 32 broken by ascending value.
	if top[1].Value != 32 || top[2].Value != 1500 {
		t.Fatalf("tie-break wrong: %v", top)
	}
	if got := h.TopN(100); len(got) != 4 {
		t.Fatalf("TopN over-count: %v", got)
	}
}

func TestHistogramPropertyTotalEqualsSumOfCounts(t *testing.T) {
	if err := quick.Check(func(vals []int16) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int64(v))
		}
		var sum int64
		for _, v := range h.Values() {
			sum += h.Count(v)
		}
		return sum == h.Total() && sum == int64(len(vals))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPropertyPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int64(v))
		}
		prev := h.Percentile(0)
		for p := 0.1; p <= 1.0; p += 0.1 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Percentile(1) == h.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	if h.String() != "hist{empty}" {
		t.Fatalf("empty string %q", h.String())
	}
	h.Add(4)
	if s := h.String(); len(s) == 0 || s == "hist{empty}" {
		t.Fatalf("string %q", s)
	}
}
