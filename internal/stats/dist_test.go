package stats

import (
	"math"
	"testing"
)

func TestExpMean(t *testing.T) {
	r := NewRNG(101)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Exp(40))
	}
	if math.Abs(s.Mean()-40) > 1 {
		t.Fatalf("Exp(40) mean %v", s.Mean())
	}
	if s.Min() < 0 {
		t.Fatalf("Exp produced negative value %v", s.Min())
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(103)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Normal(10, 3))
	}
	if math.Abs(s.Mean()-10) > 0.1 {
		t.Fatalf("Normal mean %v", s.Mean())
	}
	if math.Abs(s.StdDev()-3) > 0.1 {
		t.Fatalf("Normal stddev %v", s.StdDev())
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(107)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(5, 2)
		if v < 5 {
			t.Fatalf("Pareto(5,2) produced %v < xm", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(109)
	p := 0.2
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(float64(r.Geometric(p)))
	}
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(s.Mean()-want) > 0.1 {
		t.Fatalf("Geometric(0.2) mean %v, want ~%v", s.Mean(), want)
	}
}

func TestGeometricPEquals1(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(113)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(float64(r.Poisson(4)))
	}
	if math.Abs(s.Mean()-4) > 0.1 {
		t.Fatalf("Poisson(4) mean %v", s.Mean())
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	w, err := NewWeightedChoice([]float64{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(127)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	wantFrac := []float64{0.1, 0.3, 0.6}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-wantFrac[i]) > 0.01 {
			t.Fatalf("outcome %d frac %v, want %v", i, frac, wantFrac[i])
		}
	}
}

func TestWeightedChoiceZeroWeightNeverChosen(t *testing.T) {
	w, err := NewWeightedChoice([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(131)
	for i := 0; i < 10000; i++ {
		if got := w.Sample(r); got != 1 {
			t.Fatalf("zero-weight outcome %d sampled", got)
		}
	}
}

func TestWeightedChoiceErrors(t *testing.T) {
	if _, err := NewWeightedChoice(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewWeightedChoice([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewWeightedChoice([]float64{-1, 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewWeightedChoice([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(10, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(137)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 0 must dominate and counts must be (roughly) monotone overall.
	if counts[0] <= counts[5] || counts[0] <= counts[9] {
		t.Fatalf("Zipf not skewed: %v", counts)
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("Zipf n=0 accepted")
	}
	if _, err := NewZipf(5, 0); err == nil {
		t.Fatal("Zipf s=0 accepted")
	}
}
