package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts occurrences of integer-valued observations (block sizes,
// lifetimes, access counts). It keeps exact per-value counts; the profiler
// and trace statistics use it to find dominant block sizes.
type Histogram struct {
	counts map[int64]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]int64)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int64) { h.AddN(v, 1) }

// AddN records n observations of value v.
func (h *Histogram) AddN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.counts[v] += n
	h.total += n
	h.sum += v * n
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int64) int64 { return h.counts[v] }

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Values returns the distinct observed values in ascending order.
func (h *Histogram) Values() []int64 {
	vs := make([]int64, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Percentile returns the smallest value v such that at least p (0..1) of
// the observations are <= v. Empty histograms return 0.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p * float64(h.total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for _, v := range h.Values() {
		seen += h.counts[v]
		if seen >= target {
			return v
		}
	}
	return h.max
}

// TopN returns up to n (value, count) pairs ordered by descending count,
// breaking ties by ascending value. The workload analyser uses it to pick
// dominant block sizes for dedicated pools.
func (h *Histogram) TopN(n int) []ValueCount {
	all := make([]ValueCount, 0, len(h.counts))
	for v, c := range h.counts {
		all = append(all, ValueCount{Value: v, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// ValueCount pairs an observed value with its count.
type ValueCount struct {
	Value int64
	Count int64
}

// String renders a compact textual summary, e.g. for debug logs.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "hist{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d min=%d max=%d mean=%.1f top=", h.total, h.min, h.max, h.Mean())
	for i, vc := range h.TopN(3) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d×%d", vc.Value, vc.Count)
	}
	b.WriteByte('}')
	return b.String()
}
