package stats

import (
	"fmt"
	"math"
	"sort"
)

// Distributions used by the workload generators. All sampling is driven by
// an explicit *RNG so traces are reproducible.

// Exp samples an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp requires positive mean")
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Normal samples a normally distributed value via the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto samples a (type I) Pareto distributed value with minimum xm and
// shape alpha. Heavy-tailed; used for long-lived object lifetimes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: Pareto requires positive xm and alpha")
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Geometric samples the number of failures before the first success in a
// Bernoulli(p) sequence. p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric requires p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}

// Poisson samples a Poisson distributed count with the given mean using
// Knuth's method (adequate for the small means the generators use).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		panic("stats: Poisson requires positive mean")
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// WeightedChoice selects indices according to fixed relative weights.
// It precomputes the cumulative distribution once so sampling is O(log n).
type WeightedChoice struct {
	cum []float64
}

// NewWeightedChoice builds a sampler over len(weights) outcomes. Weights
// must be non-negative with a positive sum.
func NewWeightedChoice(weights []float64) (*WeightedChoice, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: no weights")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("stats: invalid weight %v at index %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: weights sum to zero")
	}
	return &WeightedChoice{cum: cum}, nil
}

// N reports the number of outcomes.
func (w *WeightedChoice) N() int { return len(w.cum) }

// Sample draws one outcome index using r.
func (w *WeightedChoice) Sample(r *RNG) int {
	total := w.cum[len(w.cum)-1]
	x := r.Float64() * total
	return sort.SearchFloat64s(w.cum, x)
}

// Zipf samples ranks 1..n with probability proportional to 1/rank^s, a
// common model for "few sizes dominate" allocation behaviour.
type Zipf struct {
	choice *WeightedChoice
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: Zipf requires n > 0")
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: Zipf requires s > 0")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	c, err := NewWeightedChoice(w)
	if err != nil {
		return nil, err
	}
	return &Zipf{choice: c}, nil
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(r *RNG) int { return z.choice.Sample(r) }
