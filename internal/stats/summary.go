package stats

import (
	"math"
	"sort"
)

// Summary accumulates running summary statistics over float64 observations
// using Welford's online algorithm, so it is numerically stable even for
// the billions of access counts a full exploration produces.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Range returns max-min (0 when empty).
func (s *Summary) Range() float64 { return s.Max() - s.Min() }

// RangeFactor returns max/min, the "factor N" spread the paper reports for
// footprint and accesses across a configuration sweep. Returns +Inf when
// min is zero and 0 when the summary is empty.
func (s *Summary) RangeFactor() float64 {
	if s.n == 0 {
		return 0
	}
	if s.min == 0 {
		return math.Inf(1)
	}
	return s.max / s.min
}

// Quantile returns the q-th (0..1) quantile of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
