package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Variance() != 0 || s.Range() != 0 || s.RangeFactor() != 0 {
		t.Fatal("empty summary not all zero")
	}
}

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean %v", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.RangeFactor() != 4.5 {
		t.Fatalf("range factor %v", s.RangeFactor())
	}
}

func TestSummaryRangeFactorZeroMin(t *testing.T) {
	var s Summary
	s.Add(0)
	s.Add(5)
	if !math.IsInf(s.RangeFactor(), 1) {
		t.Fatalf("range factor with zero min: %v", s.RangeFactor())
	}
}

func TestSummaryPropertyMinLEMeanLEMax(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		var s Summary
		clean := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane so mean stays in range.
			v = math.Mod(v, 1e9)
			s.Add(v)
			clean++
		}
		if clean == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {-0.5, 10}, {1.5, 50}}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(xs, 0.1); math.Abs(got-14) > 1e-12 {
		t.Fatalf("interpolated quantile %v want 14", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}
