package stats

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Intn(1000)
	}
}

func BenchmarkWeightedChoice(b *testing.B) {
	w, err := NewWeightedChoice([]float64{3, 4, 6, 3, 2, 3, 0.5})
	if err != nil {
		b.Fatal(err)
	}
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Sample(r)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Add(int64(i % 512))
	}
}
