// Package stats provides the deterministic statistics substrate used by the
// rest of dmexplore: a seedable pseudo-random number generator, probability
// distributions, histograms and summary statistics.
//
// Everything in this package is deterministic given a seed. The exploration
// tool relies on that property: profiling the same workload against two
// allocator configurations must present byte-identical allocation traces to
// both, otherwise the comparison (and the Pareto front built from it) is
// meaningless.
package stats

// RNG is a small, fast, deterministic pseudo-random number generator based
// on the PCG-XSH-RR 64/32 construction (O'Neill, 2014). It is not safe for
// concurrent use; give each goroutine its own RNG (see Split).
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = 0
	r.Uint32()
	r.state += seed
	r.Uint32()
	return r
}

// Split derives an independent generator from r in a deterministic way.
// The derived stream is decorrelated from r's by re-keying the increment.
func (r *RNG) Split() *RNG {
	s := r.Uint64()
	return NewRNG(s*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	x := r.Uint32()
	m := uint64(x) * uint64(bound)
	lo := uint32(m)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint32()
			m = uint64(x) * uint64(bound)
			lo = uint32(m)
		}
	}
	return int(m >> 32)
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int64n called with non-positive n")
	}
	max := uint64(n)
	if max == 1 {
		return 0
	}
	// Rejection sampling over the smallest all-ones mask covering max-1.
	mask := max - 1
	mask |= mask >> 1
	mask |= mask >> 2
	mask |= mask >> 4
	mask |= mask >> 8
	mask |= mask >> 16
	mask |= mask >> 32
	for {
		v := r.Uint64() & mask
		if v < max {
			return int64(v)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
