package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	c := a.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracked parent: %d/100 identical", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt64nBounds(t *testing.T) {
	r := NewRNG(9)
	bounds := []int64{1, 2, 3, 7, 100, 1 << 20, 1<<40 + 17}
	for _, b := range bounds {
		for i := 0; i < 200; i++ {
			v := r.Int64n(b)
			if v < 0 || v >= b {
				t.Fatalf("Int64n(%d) = %d out of range", b, v)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if m := s.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", m)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(17)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}
