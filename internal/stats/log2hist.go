package stats

// Fixed power-of-two bucketing for latency-style observations. The
// telemetry layer keeps one counter per bucket in a flat array so that
// recording an observation is a single index computation plus an
// increment — no map, no allocation — and snapshots can still answer
// quantile queries approximately from the merged counts.
//
// Bucket i covers values v with Log2BucketLo(i) <= v <= Log2BucketHi(i):
// bucket 0 holds v <= 0 (and v == 1), bucket i holds (2^(i-1), 2^i] for
// i >= 1, and the last bucket absorbs everything larger.

// NumLog2Buckets is the fixed bucket count. 44 buckets cover observations
// up to 2^43 — about 2.4 hours when the unit is nanoseconds — before the
// overflow bucket engages.
const NumLog2Buckets = 44

// Log2Bucket returns the bucket index for observation v.
func Log2Bucket(v int64) int {
	if v <= 1 {
		return 0
	}
	b := 0
	for u := uint64(v - 1); u > 0; u >>= 1 {
		b++
	}
	if b >= NumLog2Buckets {
		return NumLog2Buckets - 1
	}
	return b
}

// Log2BucketLo returns the smallest positive value bucket i covers (the
// overflow bucket reports its nominal lower bound).
func Log2BucketLo(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= NumLog2Buckets {
		// Clamp to the overflow bucket, mirroring Log2BucketHi: beyond-range
		// indices used to extrapolate (and overflow int64 past i = 63),
		// yielding bounds past anything the histogram can record.
		i = NumLog2Buckets - 1
	}
	return 1<<uint(i-1) + 1
}

// Log2BucketHi returns the largest value bucket i covers (the overflow
// bucket reports its nominal upper bound).
func Log2BucketHi(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= NumLog2Buckets {
		i = NumLog2Buckets - 1
	}
	return 1 << uint(i)
}

// Log2Quantile returns an upper bound for the p-quantile (0..1) of the
// observations summarized by counts (one count per bucket, as produced
// by Log2Bucket). The answer is the upper bound of the bucket containing
// the target observation — exact to within one power of two. Empty
// counts return 0.
func Log2Quantile(counts []uint64, p float64) int64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(total))
	if target < 1 {
		target = 1
	}
	var seen uint64
	last := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		last = i
		seen += c
		if seen >= target {
			return Log2BucketHi(i)
		}
	}
	return Log2BucketHi(last)
}
