package stats

import (
	"math"
	"testing"
)

func TestRidgeRecoversLinearMap(t *testing.T) {
	// y = 3 + 2·x1 − 5·x2, trained on deterministic pseudo-random inputs:
	// the model must recover the map to high accuracy.
	rng := NewRNG(99)
	r := NewRidge(3, 1e-6)
	f := func(x1, x2 float64) float64 { return 3 + 2*x1 - 5*x2 }
	for i := 0; i < 200; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		r.Observe([]float64{1, x1, x2}, f(x1, x2))
	}
	for _, c := range [][2]float64{{0, 0}, {1, 1}, {0.25, 0.75}} {
		got, _ := r.Predict([]float64{1, c[0], c[1]})
		want := f(c[0], c[1])
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("predict(%v) = %v, want %v", c, got, want)
		}
	}
	if r.N() != 200 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestRidgeLeverageShrinksWithData(t *testing.T) {
	r := NewRidge(2, 1e-3)
	x := []float64{1, 0.5}
	_, before := r.Predict(x)
	for i := 0; i < 10; i++ {
		r.Observe(x, 1)
	}
	_, after := r.Predict(x)
	if !(after < before) || after < 0 {
		t.Fatalf("leverage %v -> %v, want positive shrink", before, after)
	}
	// An orthogonal direction stays unexplored: leverage stays high.
	_, ortho := r.Predict([]float64{0.5, -1})
	if ortho <= after {
		t.Fatalf("unseen direction leverage %v <= seen %v", ortho, after)
	}
}

func TestRidgeConstantColumnsStayStable(t *testing.T) {
	// Constant (collinear with bias) columns — the trace-feature part of
	// the surrogate encoding — must not destabilize the update.
	r := NewRidge(4, 1e-3)
	rng := NewRNG(7)
	for i := 0; i < 100; i++ {
		x := []float64{1, 0.7, 0.7, rng.Float64()}
		r.Observe(x, 2*x[3]+1)
	}
	got, lev := r.Predict([]float64{1, 0.7, 0.7, 0.5})
	if math.IsNaN(got) || math.IsInf(got, 0) || math.IsNaN(lev) {
		t.Fatalf("unstable prediction %v (leverage %v)", got, lev)
	}
	if math.Abs(got-2) > 0.05 {
		t.Fatalf("prediction %v, want ~2", got)
	}
}

func TestRidgeDeterministic(t *testing.T) {
	build := func() *Ridge {
		r := NewRidge(3, 1e-2)
		rng := NewRNG(5)
		for i := 0; i < 50; i++ {
			r.Observe([]float64{1, rng.Float64(), rng.Float64()}, rng.Float64()*100)
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 10; i++ {
		x := []float64{1, float64(i) / 10, float64(10-i) / 10}
		pa, la := a.Predict(x)
		pb, lb := b.Predict(x)
		if pa != pb || la != lb {
			t.Fatalf("prediction diverged: %v/%v vs %v/%v", pa, la, pb, lb)
		}
	}
}

func TestRidgePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero dim":    func() { NewRidge(0, 1) },
		"zero lambda": func() { NewRidge(2, 0) },
		"bad observe": func() { NewRidge(2, 1).Observe([]float64{1}, 0) },
		"bad predict": func() { NewRidge(2, 1).Predict([]float64{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSpearman(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
		want   float64
	}{
		{"perfect", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{"perfect nonlinear", []float64{1, 2, 3, 4}, []float64{1, 8, 27, 64}, 1},
		{"reversed", []float64{1, 2, 3}, []float64{9, 5, 1}, -1},
	}
	for _, c := range cases {
		if got := Spearman(c.xs, c.ys); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: %v, want %v", c.name, got, c.want)
		}
	}
	// Ties get average ranks: correlation stays defined and in [-1, 1].
	got := Spearman([]float64{1, 1, 2, 3}, []float64{5, 6, 7, 8})
	if math.IsNaN(got) || got < 0.9 {
		t.Errorf("tied ranks: %v", got)
	}
	for name, v := range map[string]float64{
		"short":    Spearman([]float64{1}, []float64{1}),
		"mismatch": Spearman([]float64{1, 2}, []float64{1}),
		"constant": Spearman([]float64{2, 2, 2}, []float64{1, 2, 3}),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s: %v, want NaN", name, v)
		}
	}
}

func TestMeanAbsError(t *testing.T) {
	if got := MeanAbsError([]float64{1, 2, 3}, []float64{2, 2, 5}); got != 1 {
		t.Fatalf("MAE %v, want 1", got)
	}
	if !math.IsNaN(MeanAbsError(nil, nil)) {
		t.Fatal("empty MAE not NaN")
	}
	if !math.IsNaN(MeanAbsError([]float64{1}, []float64{1, 2})) {
		t.Fatal("mismatched MAE not NaN")
	}
}
