package stats

import (
	"math"
	"sort"
)

// Spearman returns the Spearman rank correlation coefficient between the
// paired samples xs and ys: the Pearson correlation of their ranks, with
// ties assigned average (fractional) ranks. It is the surrogate-accuracy
// metric the journal digest reports — a screening model earns its keep by
// ranking candidates correctly, not by predicting absolute values.
//
// Returns NaN when the slices differ in length, hold fewer than two
// pairs, or either side is constant (rank variance zero).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	rx := ranks(xs)
	ry := ranks(ys)
	n := float64(len(xs))
	var mx, my float64
	for i := range rx {
		mx += rx[i]
		my += ry[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range rx {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks assigns 1-based average ranks to xs (ties share the mean of the
// rank positions they occupy).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i + 1
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Positions i..j-1 hold the same value: average of ranks i+1..j.
		avg := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// MeanAbsError returns the mean absolute error between the paired samples
// (NaN when lengths differ or the slices are empty).
func MeanAbsError(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred))
}
