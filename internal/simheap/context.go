// Package simheap provides the simulated-memory substrate the allocator
// framework runs on. Go has no manual memory management, so dmexplore does
// not allocate real memory: allocators operate on a modelled address space
// and explicitly account every word of metadata and application data they
// would touch on the target platform. The profiling metrics of the paper
// (memory accesses, memory footprint, energy, execution time per hierarchy
// layer) are all derived from the counters this package maintains.
//
// A Context binds a memhier.Hierarchy to a set of per-layer counters and a
// cycle clock. Pools reserve arenas (Regions) from a layer; every metadata
// or application access is charged to the layer holding the touched
// address via Read/Write. CPU-only work advances the clock via Compute.
package simheap

import (
	"fmt"

	"dmexplore/internal/memhier"
)

// WordSize is the machine word size of the modelled platform in bytes.
// The modelled target is a 32-bit embedded core, matching the paper's
// platforms (ARM-class SoCs).
const WordSize = 8 // bytes; 64-bit words keep header math simple

// WordBits is the number of bits per word.
const WordBits = WordSize * 8

// LayerCounters accumulates the per-layer profiling state.
type LayerCounters struct {
	Reads  uint64 // word reads charged to this layer
	Writes uint64 // word writes charged to this layer

	ReservedBytes int64 // bytes currently reserved from the layer
	PeakBytes     int64 // high-water mark of ReservedBytes
}

// Accesses returns reads+writes.
func (c LayerCounters) Accesses() uint64 { return c.Reads + c.Writes }

// Context is a simulation context: the hierarchy, the per-layer counters,
// and the cycle clock. It is not safe for concurrent use; explorations run
// one Context per goroutine.
type Context struct {
	hier     *memhier.Hierarchy
	counters []LayerCounters
	nextBase []uint64 // per-layer bump pointer for region bases
	cycles   uint64

	// readCycles/writeCycles cache each layer's flat access latency so the
	// hot path never copies a Layer struct out of the hierarchy.
	readCycles  []uint64
	writeCycles []uint64

	// fast is true while no tracer, cache or row buffer is attached — the
	// common exploration case — and gates a batched access path that pays
	// the model-dispatch branch chain once per charge, not once per word.
	fast bool

	// totalReserved is the running sum of all layers' ReservedBytes,
	// maintained by Reserve/Release so footprint-over-time sampling is
	// O(1) instead of a per-sample layer loop.
	totalReserved int64

	// caches, when non-nil, interposes a cache in front of the layer with
	// the same index; accesses then additionally charge the backing layer
	// on misses. Entries may be nil (no cache for that layer).
	caches []*memhier.Cache

	// rowbufs models SDRAM open-page behaviour per layer (nil = flat
	// cost). Ignored for layers that also have a cache (the cache already
	// batches traffic into line bursts).
	rowbufs []*memhier.RowBuffer

	// energyAdj accumulates per-access energy adjustments (row-buffer
	// hits are cheaper than the layer's flat per-access figure).
	energyAdj float64

	// trace, when non-nil, receives every charged access (used by the
	// raw-profile-log emitter).
	trace AccessTracer
}

// AccessTracer observes every charged access. Implementations must be
// cheap: the profiler's log emitter is the only expected user.
type AccessTracer interface {
	TraceAccess(layer memhier.LayerID, addr uint64, words uint64, write bool)
}

// NewContext returns a fresh context over h.
func NewContext(h *memhier.Hierarchy) *Context {
	n := h.NumLayers()
	ctx := &Context{
		hier:        h,
		counters:    make([]LayerCounters, n),
		nextBase:    make([]uint64, n),
		caches:      make([]*memhier.Cache, n),
		rowbufs:     make([]*memhier.RowBuffer, n),
		readCycles:  make([]uint64, n),
		writeCycles: make([]uint64, n),
		fast:        true,
	}
	for i := 0; i < n; i++ {
		layer := h.Layer(memhier.LayerID(i))
		ctx.readCycles[i] = uint64(layer.ReadCycles)
		ctx.writeCycles[i] = uint64(layer.WriteCycles)
	}
	return ctx
}

// Hierarchy returns the hierarchy the context simulates.
func (ctx *Context) Hierarchy() *memhier.Hierarchy { return ctx.hier }

// SetTracer installs (or clears, with nil) an access tracer.
func (ctx *Context) SetTracer(t AccessTracer) {
	ctx.trace = t
	ctx.updateFast()
}

// updateFast recomputes whether the batched no-model access path applies.
func (ctx *Context) updateFast() {
	ctx.fast = ctx.trace == nil
	if !ctx.fast {
		return
	}
	for i := range ctx.caches {
		if ctx.caches[i] != nil || ctx.rowbufs[i] != nil {
			ctx.fast = false
			return
		}
	}
}

// AttachCache interposes a cache in front of layer id. Accesses to that
// layer then hit the cache; misses charge the layer itself for the line
// fill (and write-back). The cache's own access cost is modelled as one
// cycle and the layer's ReadEnergy/8 per access, a conventional
// tag+data-array approximation.
func (ctx *Context) AttachCache(id memhier.LayerID, c *memhier.Cache) error {
	if !ctx.hier.Valid(id) {
		return fmt.Errorf("simheap: invalid layer %d", id)
	}
	ctx.caches[id] = c
	ctx.updateFast()
	return nil
}

// Cache returns the cache attached to layer id, or nil.
func (ctx *Context) Cache(id memhier.LayerID) *memhier.Cache { return ctx.caches[id] }

// rowHitCycles is the latency of a row-buffer hit; rowHitEnergyFactor is
// the fraction of the layer's flat per-access energy a hit costs (the
// activate/precharge share is skipped).
const (
	rowHitCycles       = 2
	rowHitEnergyFactor = 0.4
)

// AttachRowBuffer enables the SDRAM open-page model on layer id. It has
// no effect on accesses that go through a cache attached to the same
// layer.
func (ctx *Context) AttachRowBuffer(id memhier.LayerID, rb *memhier.RowBuffer) error {
	if !ctx.hier.Valid(id) {
		return fmt.Errorf("simheap: invalid layer %d", id)
	}
	ctx.rowbufs[id] = rb
	ctx.updateFast()
	return nil
}

// RowBuffer returns the row-buffer model attached to layer id, or nil.
func (ctx *Context) RowBuffer(id memhier.LayerID) *memhier.RowBuffer { return ctx.rowbufs[id] }

// Counters returns a snapshot of the counters for layer id.
func (ctx *Context) Counters(id memhier.LayerID) LayerCounters { return ctx.counters[id] }

// Cycles returns the current simulated cycle count.
func (ctx *Context) Cycles() uint64 { return ctx.cycles }

// Compute advances the clock by n CPU cycles without touching memory.
// Allocator search loops use it for their non-memory work.
func (ctx *Context) Compute(n uint64) { ctx.cycles += n }

// Read charges words word-reads at addr to layer id.
func (ctx *Context) Read(id memhier.LayerID, addr uint64, words uint64) {
	if ctx.fast {
		ctx.counters[id].Reads += words
		ctx.cycles += ctx.readCycles[id] * words
		return
	}
	ctx.access(id, addr, words, false)
}

// Write charges words word-writes at addr to layer id.
func (ctx *Context) Write(id memhier.LayerID, addr uint64, words uint64) {
	if ctx.fast {
		ctx.counters[id].Writes += words
		ctx.cycles += ctx.writeCycles[id] * words
		return
	}
	ctx.access(id, addr, words, true)
}

func (ctx *Context) access(id memhier.LayerID, addr uint64, words uint64, write bool) {
	if words == 0 {
		return
	}
	layer := ctx.hier.Layer(id)
	c := &ctx.counters[id]
	if ctx.trace != nil {
		ctx.trace.TraceAccess(id, addr, words, write)
	}
	if cache := ctx.caches[id]; cache != nil {
		// Word-by-word through the cache; line fills charge the layer.
		// Fills and write-backs are burst transfers: the first word pays
		// the full layer latency, subsequent words stream at one cycle.
		for i := uint64(0); i < words; i++ {
			res := cache.Access(addr+i, write)
			ctx.cycles++ // cache access latency
			if !res.Hit {
				c.Reads += res.BackingReads
				c.Writes += res.BackingWrite
				if res.BackingReads > 0 {
					ctx.cycles += uint64(layer.ReadCycles) + (res.BackingReads - 1)
				}
				if res.BackingWrite > 0 {
					ctx.cycles += uint64(layer.WriteCycles) + (res.BackingWrite - 1)
				}
			}
		}
		return
	}
	if rb := ctx.rowbufs[id]; rb != nil {
		for i := uint64(0); i < words; i++ {
			flatCycles := uint64(layer.ReadCycles)
			flatEnergy := layer.ReadEnergy
			if write {
				c.Writes++
				flatCycles = uint64(layer.WriteCycles)
				flatEnergy = layer.WriteEnergy
			} else {
				c.Reads++
			}
			if rb.Access(addr + i) {
				ctx.cycles += rowHitCycles
				ctx.energyAdj -= (1 - rowHitEnergyFactor) * flatEnergy
			} else {
				ctx.cycles += flatCycles
			}
		}
		return
	}
	if write {
		c.Writes += words
		ctx.cycles += uint64(layer.WriteCycles) * words
	} else {
		c.Reads += words
		ctx.cycles += uint64(layer.ReadCycles) * words
	}
}

// Reserve claims size bytes from layer id and returns the region. It
// fails when the layer is bounded and the reservation would exceed its
// capacity — the simulated equivalent of a scratchpad overflow.
func (ctx *Context) Reserve(id memhier.LayerID, size int64) (*Region, error) {
	if !ctx.hier.Valid(id) {
		return nil, fmt.Errorf("simheap: invalid layer %d", id)
	}
	if size <= 0 {
		return nil, fmt.Errorf("simheap: non-positive reservation %d", size)
	}
	layer := ctx.hier.Layer(id)
	c := &ctx.counters[id]
	if layer.Bounded() && c.ReservedBytes+size > layer.Capacity {
		return nil, &CapacityError{
			Layer: layer.Name, Requested: size,
			InUse: c.ReservedBytes, Capacity: layer.Capacity,
		}
	}
	base := ctx.nextBase[id]
	ctx.nextBase[id] += uint64(size)
	c.ReservedBytes += size
	ctx.totalReserved += size
	if c.ReservedBytes > c.PeakBytes {
		c.PeakBytes = c.ReservedBytes
	}
	return &Region{ctx: ctx, layer: id, base: base, size: size}, nil
}

// TotalPeakBytes returns the peak footprint summed over all layers.
// Note this sums per-layer peaks; the scalar footprint metric the paper
// reports is the peak of the total, which the profiler tracks separately
// when needed — for pool-reserved memory the two coincide because pools
// only grow.
func (ctx *Context) TotalPeakBytes() int64 {
	var total int64
	for i := range ctx.counters {
		total += ctx.counters[i].PeakBytes
	}
	return total
}

// TotalReservedBytes returns the bytes currently reserved across all
// layers — the instantaneous footprint the profiler samples for
// footprint-over-time series. It is O(1): Reserve and Release maintain
// the running total.
func (ctx *Context) TotalReservedBytes() int64 { return ctx.totalReserved }

// TotalAccesses returns reads+writes summed over all layers.
func (ctx *Context) TotalAccesses() uint64 {
	var total uint64
	for i := range ctx.counters {
		total += ctx.counters[i].Accesses()
	}
	return total
}

// Energy returns the total memory energy in nanojoules under the
// hierarchy's cost model: dynamic access energy plus capacity leakage
// integrated over the run time.
func (ctx *Context) Energy() float64 {
	return EnergyOf(ctx.hier, ctx.counters, ctx.cycles, ctx.energyAdj)
}

// EnergyOf computes the memory energy of a run described by per-layer
// counters (indexed by LayerID), a cycle count and an access-energy
// adjustment under h's cost model. It is the pure-function core of
// Context.Energy; the incremental evaluator calls it with composed
// counters so a partial replay reproduces the exact float summation
// order — and therefore the bit-identical result — of a full run.
func EnergyOf(h *memhier.Hierarchy, counters []LayerCounters, cycles uint64, adj float64) float64 {
	var e float64
	kilocycles := float64(cycles) / 1000
	for i := range counters {
		layer := h.Layer(memhier.LayerID(i))
		c := counters[i]
		e += float64(c.Reads) * layer.ReadEnergy
		e += float64(c.Writes) * layer.WriteEnergy
		if layer.LeakagePower > 0 {
			peakKB := float64(c.PeakBytes) / 1024
			e += layer.LeakagePower * peakKB * kilocycles
		}
	}
	return e + adj
}

// CapacityError reports a failed reservation on a bounded layer.
type CapacityError struct {
	Layer     string
	Requested int64
	InUse     int64
	Capacity  int64
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("simheap: layer %s full: %d requested, %d/%d in use",
		e.Layer, e.Requested, e.InUse, e.Capacity)
}

// Region is a contiguous arena reserved from one layer. Pools carve their
// blocks out of regions; block addresses are region-relative plus base.
type Region struct {
	ctx      *Context
	layer    memhier.LayerID
	base     uint64
	size     int64
	released bool
}

// Layer returns the layer the region lives in.
func (r *Region) Layer() memhier.LayerID { return r.layer }

// Base returns the region's base address (within its layer's space).
func (r *Region) Base() uint64 { return r.base }

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return r.size }

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.base + uint64(r.size) }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.base && addr < r.End()
}

// Read charges words word-reads at addr (absolute) to the region's layer.
func (r *Region) Read(addr uint64, words uint64) { r.ctx.Read(r.layer, addr, words) }

// Write charges words word-writes at addr (absolute) to the region's layer.
func (r *Region) Write(addr uint64, words uint64) { r.ctx.Write(r.layer, addr, words) }

// Release returns the region's bytes to the layer accounting. Releasing
// twice is a programming error and panics, matching the double-free
// semantics the allocator framework itself enforces for blocks.
func (r *Region) Release() {
	if r.released {
		panic("simheap: region released twice")
	}
	r.released = true
	r.ctx.counters[r.layer].ReservedBytes -= r.size
	r.ctx.totalReserved -= r.size
}
