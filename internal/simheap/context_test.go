package simheap

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dmexplore/internal/memhier"
)

func testHier(t *testing.T) *memhier.Hierarchy {
	t.Helper()
	h, err := memhier.New(
		memhier.Layer{Name: "sp", Capacity: 1024, ReadEnergy: 0.5, WriteEnergy: 0.6, ReadCycles: 1, WriteCycles: 1},
		memhier.Layer{Name: "dram", ReadEnergy: 8, WriteEnergy: 9, ReadCycles: 16, WriteCycles: 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestContextAccessCounting(t *testing.T) {
	ctx := NewContext(testHier(t))
	ctx.Read(0, 0, 3)
	ctx.Write(0, 8, 2)
	ctx.Read(1, 0, 1)
	ctx.Read(0, 0, 0) // zero words: no-op

	sp := ctx.Counters(0)
	if sp.Reads != 3 || sp.Writes != 2 {
		t.Fatalf("sp counters %+v", sp)
	}
	dram := ctx.Counters(1)
	if dram.Reads != 1 || dram.Writes != 0 {
		t.Fatalf("dram counters %+v", dram)
	}
	if ctx.TotalAccesses() != 6 {
		t.Fatalf("total accesses %d", ctx.TotalAccesses())
	}
	// Cycles: 3*1 + 2*1 + 1*16 = 21.
	if ctx.Cycles() != 21 {
		t.Fatalf("cycles %d", ctx.Cycles())
	}
}

func TestContextCompute(t *testing.T) {
	ctx := NewContext(testHier(t))
	ctx.Compute(100)
	if ctx.Cycles() != 100 {
		t.Fatalf("cycles %d", ctx.Cycles())
	}
}

func TestContextEnergy(t *testing.T) {
	ctx := NewContext(testHier(t))
	ctx.Read(1, 0, 10)  // 10 * 8 nJ
	ctx.Write(1, 0, 10) // 10 * 9 nJ
	want := 10*8.0 + 10*9.0
	if got := ctx.Energy(); got != want {
		t.Fatalf("energy %v want %v", got, want)
	}
}

func TestReserveAndFootprint(t *testing.T) {
	ctx := NewContext(testHier(t))
	r1, err := ctx.Reserve(0, 400)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ctx.Reserve(0, 600)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base() == r2.Base() {
		t.Fatal("regions overlap")
	}
	if r2.Base() != r1.End() {
		t.Fatalf("regions not contiguous: %d vs %d", r2.Base(), r1.End())
	}
	c := ctx.Counters(0)
	if c.ReservedBytes != 1000 || c.PeakBytes != 1000 {
		t.Fatalf("footprint %+v", c)
	}

	// Layer is bounded at 1024: next reservation must fail.
	_, err = ctx.Reserve(0, 100)
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CapacityError, got %v", err)
	}
	if ce.Layer != "sp" || ce.InUse != 1000 || ce.Capacity != 1024 {
		t.Fatalf("capacity error %+v", ce)
	}

	r1.Release()
	c = ctx.Counters(0)
	if c.ReservedBytes != 600 {
		t.Fatalf("reserved after release %d", c.ReservedBytes)
	}
	if c.PeakBytes != 1000 {
		t.Fatalf("peak lost on release: %d", c.PeakBytes)
	}
	// Released space can be re-reserved (accounting-wise).
	if _, err := ctx.Reserve(0, 300); err != nil {
		t.Fatalf("re-reserve failed: %v", err)
	}
}

func TestReserveUnboundedLayer(t *testing.T) {
	ctx := NewContext(testHier(t))
	if _, err := ctx.Reserve(1, 1<<40); err != nil {
		t.Fatalf("unbounded layer refused reservation: %v", err)
	}
}

func TestReserveValidation(t *testing.T) {
	ctx := NewContext(testHier(t))
	if _, err := ctx.Reserve(5, 10); err == nil {
		t.Fatal("invalid layer accepted")
	}
	if _, err := ctx.Reserve(0, 0); err == nil {
		t.Fatal("zero-size reservation accepted")
	}
	if _, err := ctx.Reserve(0, -5); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestRegionContains(t *testing.T) {
	ctx := NewContext(testHier(t))
	r, _ := ctx.Reserve(0, 100)
	if !r.Contains(r.Base()) || !r.Contains(r.End()-1) {
		t.Fatal("region excludes own bytes")
	}
	if r.Contains(r.End()) {
		t.Fatal("region contains end")
	}
}

func TestRegionDoubleReleasePanics(t *testing.T) {
	ctx := NewContext(testHier(t))
	r, _ := ctx.Reserve(0, 10)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	r.Release()
}

func TestRegionAccessChargesOwnLayer(t *testing.T) {
	ctx := NewContext(testHier(t))
	r, _ := ctx.Reserve(1, 64)
	r.Read(r.Base(), 2)
	r.Write(r.Base()+8, 1)
	c := ctx.Counters(1)
	if c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("dram counters %+v", c)
	}
	if ctx.Counters(0).Accesses() != 0 {
		t.Fatal("scratchpad charged")
	}
}

func TestContextWithCache(t *testing.T) {
	ctx := NewContext(testHier(t))
	cache, err := memhier.NewCache(64, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.AttachCache(1, cache); err != nil {
		t.Fatal(err)
	}
	if err := ctx.AttachCache(9, cache); err == nil {
		t.Fatal("invalid layer accepted")
	}
	if ctx.Cache(1) != cache {
		t.Fatal("cache not attached")
	}

	// First access misses: the layer is charged a 4-word line fill.
	ctx.Read(1, 0, 1)
	c := ctx.Counters(1)
	if c.Reads != 4 {
		t.Fatalf("miss charged %d reads, want 4", c.Reads)
	}
	// Second access to the same line hits: no extra layer traffic.
	ctx.Read(1, 1, 1)
	c = ctx.Counters(1)
	if c.Reads != 4 {
		t.Fatalf("hit charged the layer: %d reads", c.Reads)
	}
	if cache.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", cache.HitRate())
	}
}

type recordingTracer struct {
	n     int
	words uint64
}

func (r *recordingTracer) TraceAccess(_ memhier.LayerID, _ uint64, words uint64, _ bool) {
	r.n++
	r.words += words
}

func TestContextTracer(t *testing.T) {
	ctx := NewContext(testHier(t))
	tr := &recordingTracer{}
	ctx.SetTracer(tr)
	ctx.Read(0, 0, 3)
	ctx.Write(1, 0, 2)
	if tr.n != 2 || tr.words != 5 {
		t.Fatalf("tracer saw %d events / %d words", tr.n, tr.words)
	}
	ctx.SetTracer(nil)
	ctx.Read(0, 0, 1)
	if tr.n != 2 {
		t.Fatal("tracer not removed")
	}
}

func TestPropertyReserveNeverOverlaps(t *testing.T) {
	ctx := NewContext(testHier(t))
	var regions []*Region
	if err := quick.Check(func(sz uint16) bool {
		size := int64(sz%512) + 1
		r, err := ctx.Reserve(1, size)
		if err != nil {
			return false
		}
		for _, prev := range regions {
			if r.Base() < prev.End() && prev.Base() < r.End() {
				return false
			}
		}
		regions = append(regions, r)
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPeakMonotone(t *testing.T) {
	ctx := NewContext(testHier(t))
	prevPeak := int64(0)
	if err := quick.Check(func(sz uint16, release bool) bool {
		size := int64(sz%256) + 1
		r, err := ctx.Reserve(1, size)
		if err != nil {
			return false
		}
		if release {
			r.Release()
		}
		peak := ctx.Counters(1).PeakBytes
		ok := peak >= prevPeak && peak >= ctx.Counters(1).ReservedBytes
		prevPeak = peak
		return ok
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestContextWithRowBuffer(t *testing.T) {
	ctx := NewContext(testHier(t))
	rb, err := memhier.NewRowBuffer(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.AttachRowBuffer(1, rb); err != nil {
		t.Fatal(err)
	}
	if err := ctx.AttachRowBuffer(9, rb); err == nil {
		t.Fatal("invalid layer accepted")
	}
	if ctx.RowBuffer(1) != rb {
		t.Fatal("row buffer not attached")
	}

	// Sequential reads: first word misses (full 16-cycle latency), the
	// rest hit (2 cycles each). Word counts unchanged.
	ctx.Read(1, 0, 64)
	c := ctx.Counters(1)
	if c.Reads != 64 {
		t.Fatalf("reads %d", c.Reads)
	}
	wantCycles := uint64(16 + 63*2)
	if ctx.Cycles() != wantCycles {
		t.Fatalf("cycles %d, want %d", ctx.Cycles(), wantCycles)
	}
	// Energy: 64 flat reads at 8 nJ minus the hit discount on 63.
	flat := 64 * 8.0
	want := flat - 63*(1-0.4)*8.0
	if got := ctx.Energy(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy %v, want %v", got, want)
	}
	if rb.HitRate() < 0.98 {
		t.Fatalf("hit rate %v", rb.HitRate())
	}
}

func TestRowBufferCheaperThanFlatForSequential(t *testing.T) {
	flat := NewContext(testHier(t))
	flat.Read(1, 0, 1000)

	open := NewContext(testHier(t))
	rb, _ := memhier.NewRowBuffer(256, 4)
	open.AttachRowBuffer(1, rb)
	open.Read(1, 0, 1000)

	if open.Cycles() >= flat.Cycles() {
		t.Fatalf("open-page not faster: %d vs %d", open.Cycles(), flat.Cycles())
	}
	if open.Energy() >= flat.Energy() {
		t.Fatalf("open-page not cheaper: %v vs %v", open.Energy(), flat.Energy())
	}
}

// TestTotalReservedRunningTotal pins the O(1) running total to the
// per-layer recomputation across a reserve/release sequence.
func TestTotalReservedRunningTotal(t *testing.T) {
	ctx := NewContext(testHier(t))
	sum := func() int64 {
		var total int64
		for i := 0; i < ctx.Hierarchy().NumLayers(); i++ {
			total += ctx.Counters(memhier.LayerID(i)).ReservedBytes
		}
		return total
	}
	var regions []*Region
	for i, size := range []int64{400, 2048, 128, 64} {
		r, err := ctx.Reserve(memhier.LayerID(i%2), size)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
		if got, want := ctx.TotalReservedBytes(), sum(); got != want {
			t.Fatalf("after reserve %d: running total %d, recomputed %d", i, got, want)
		}
	}
	for i, r := range regions {
		r.Release()
		if got, want := ctx.TotalReservedBytes(), sum(); got != want {
			t.Fatalf("after release %d: running total %d, recomputed %d", i, got, want)
		}
	}
	if ctx.TotalReservedBytes() != 0 {
		t.Fatalf("non-zero total %d after releasing everything", ctx.TotalReservedBytes())
	}
}

// countingTracer forces the slow access path while observing nothing.
type countingTracer struct{ n int }

func (c *countingTracer) TraceAccess(memhier.LayerID, uint64, uint64, bool) { c.n++ }

// TestFastPathMatchesSlowPath replays the same charge sequence through
// the batched fast path and the traced slow path: all counters and the
// clock must agree (the tracer itself has no model effect).
func TestFastPathMatchesSlowPath(t *testing.T) {
	charge := func(ctx *Context) {
		ctx.Read(0, 0, 3)
		ctx.Write(0, 8, 2)
		ctx.Read(1, 16, 7)
		ctx.Write(1, 0, 1)
		ctx.Read(1, 0, 0)
		ctx.Compute(5)
	}
	fast := NewContext(testHier(t))
	charge(fast)

	slow := NewContext(testHier(t))
	tr := &countingTracer{}
	slow.SetTracer(tr)
	charge(slow)

	for i := 0; i < 2; i++ {
		if fast.Counters(memhier.LayerID(i)) != slow.Counters(memhier.LayerID(i)) {
			t.Fatalf("layer %d counters diverge: %+v vs %+v",
				i, fast.Counters(memhier.LayerID(i)), slow.Counters(memhier.LayerID(i)))
		}
	}
	if fast.Cycles() != slow.Cycles() {
		t.Fatalf("cycles diverge: %d vs %d", fast.Cycles(), slow.Cycles())
	}
	if fast.Energy() != slow.Energy() {
		t.Fatalf("energy diverges: %v vs %v", fast.Energy(), slow.Energy())
	}
	if tr.n != 4 { // one TraceAccess per non-empty charge
		t.Fatalf("tracer saw %d accesses", tr.n)
	}
	// Clearing the tracer restores the fast path.
	slow.SetTracer(nil)
	slow.Read(0, 0, 1)
	if tr.n != 4 {
		t.Fatal("tracer still active after SetTracer(nil)")
	}
}
