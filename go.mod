module dmexplore

go 1.22
